"""Experiment jobs: validated submissions executed on a background pool.

The service layer splits cleanly in two: this module knows *experiments*
(payload validation, campaign execution, progress, summaries) and knows
nothing about HTTP; :mod:`repro.service.server` knows HTTP and nothing
about campaigns.  The seam is the :class:`ExperimentService`:

* :meth:`ExperimentService.submit` validates a JSON payload — registered
  experiment names and/or an inline
  :class:`~repro.api.campaign.ExperimentSpec`, plus optional
  ``scale``/``engine`` — and schedules a :class:`Job` on a thread pool.
  Submitting a payload identical to one still pending/running returns
  the in-flight job instead of a duplicate.
* Each job runs through the ordinary
  :class:`~repro.api.campaign.CampaignRunner` with the service's
  :class:`~repro.store.store.ResultStore` attached, so a re-submitted
  completed campaign resolves every run against the store index and
  finishes without executing a single spec (the
  :class:`~repro.api.runner.BatchRunner` never even builds its worker
  pool when nothing is pending).
* Job state is observable two ways: :meth:`Job.snapshot` (a JSON-safe
  status dict whose terminal form embeds an
  ``EXPERIMENT_SUMMARY``-shaped summary) and
  :meth:`ExperimentService.watch` (an iterator of snapshots, one per
  state change — the engine behind the streaming status endpoint).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..api import ENGINES, EXPERIMENTS, ensure_registered
from ..api.campaign import CampaignRunner, DriverExperiment, ExperimentSpec
from ..api.spec import RunRecord, SpecError

__all__ = ["JobError", "Job", "ExperimentService"]

#: Job lifecycle states, in order.
JOB_STATES = ("pending", "running", "completed", "failed")


class JobError(ValueError):
    """A submission payload is malformed (HTTP 400 at the server layer)."""


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class Job:
    """One submitted campaign execution and its observable state.

    All mutation happens under ``_cond``; every change bumps ``version``
    and notifies waiters, which is what :meth:`ExperimentService.watch`
    blocks on.
    """

    id: str
    payload: Dict[str, Any]
    experiments: List[str]
    scale: Optional[str]
    engine: Optional[str]
    created_at: float
    state: str = "pending"
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done: int = 0
    total: int = 0
    summary: Optional[Dict[str, Any]] = None
    rows: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    titles: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None
    version: int = 0
    _cond: threading.Condition = field(default_factory=threading.Condition, repr=False)

    @property
    def terminal(self) -> bool:
        """Whether the job has reached ``completed`` or ``failed``."""
        return self.state in ("completed", "failed")

    def _bump(self) -> None:
        self.version += 1
        self._cond.notify_all()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe status view (the ``GET /experiments/<id>`` body)."""
        with self._cond:
            snap: Dict[str, Any] = {
                "job": self.id,
                "state": self.state,
                "experiments": list(self.experiments),
                "scale": self.scale,
                "engine": self.engine,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "progress": {"done": self.done, "total": self.total},
                "version": self.version,
            }
            if self.error is not None:
                snap["error"] = self.error
            if self.summary is not None:
                snap["summary"] = dict(self.summary)
            return snap

    def result_payload(self) -> Dict[str, Any]:
        """The ``GET /experiments/<id>/result`` body (completed jobs only)."""
        with self._cond:
            if self.state != "completed":
                raise JobError(f"job {self.id} is {self.state}, not completed")
            return {
                "job": self.id,
                "summary": dict(self.summary or {}),
                "experiments": [
                    {
                        "name": name,
                        "title": self.titles.get(name, ""),
                        "rows": self.rows.get(name, []),
                    }
                    for name in self.experiments
                ],
            }

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; return whether it is."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self.terminal:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining)
            return self.terminal


class ExperimentService:
    """Validate, queue and execute experiment submissions.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.store.ResultStore` every job runs
        against — the reason a resubmitted campaign is served from cache.
    out_dir:
        Optional artifact directory; each job writes its campaign
        artifacts under ``<out_dir>/<job_id>/``.
    parallel / max_workers:
        Forwarded to each job's :class:`~repro.api.campaign.CampaignRunner`
        (``parallel=False`` executes runs in the job thread — the CI and
        test mode).
    job_workers:
        Concurrent jobs (each job is one pool thread; its runs may fan
        out further through the BatchRunner's process pool).
    """

    def __init__(
        self,
        *,
        store: Optional[Any] = None,
        out_dir: Optional[str] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        job_workers: int = 1,
    ) -> None:
        if job_workers < 1:
            raise ValueError("job_workers must be >= 1")
        self.store = store
        self.out_dir = out_dir
        self.parallel = parallel
        self.max_workers = max_workers
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._executor = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def _parse(self, payload: Any) -> Tuple[List[Union[str, Dict[str, Any]]], Optional[str], Optional[str]]:
        """Validate a submission payload; raise :class:`JobError` on defects.

        Accepted fields: ``experiment`` (one registered name) or
        ``experiments`` (a list of names, or ``"all"``), xor ``spec`` (an
        inline :class:`ExperimentSpec` dict); optional ``scale`` (name) or
        ``quick`` (bool shorthand), and ``engine``.
        """
        if not isinstance(payload, dict):
            raise JobError(f"payload must be a JSON object, got {type(payload).__name__}")
        known = {"experiment", "experiments", "spec", "scale", "quick", "engine"}
        unknown = set(payload) - known
        if unknown:
            raise JobError(f"unknown payload field(s): {', '.join(sorted(unknown))}")

        ensure_registered()
        engine = payload.get("engine")
        if engine is not None and engine not in ENGINES:
            raise JobError(
                f"unknown engine {engine!r}; registered: {', '.join(ENGINES.names())}"
            )
        scale = payload.get("scale")
        if payload.get("quick"):
            if scale not in (None, "quick"):
                raise JobError("'quick' is shorthand for scale='quick'; give one of them")
            scale = "quick"
        if scale is not None and not isinstance(scale, str):
            raise JobError("scale must be a string")

        names = payload.get("experiments")
        if payload.get("experiment") is not None:
            if names is not None:
                raise JobError("give either 'experiment' or 'experiments', not both")
            names = [payload["experiment"]]
        spec_payload = payload.get("spec")
        if (names is None) == (spec_payload is None):
            raise JobError("give exactly one of 'experiment(s)' or 'spec'")

        experiments: List[Union[str, Dict[str, Any]]] = []
        if spec_payload is not None:
            try:
                ExperimentSpec.from_dict(spec_payload)
            except SpecError as exc:
                raise JobError(f"invalid experiment spec: {exc}") from None
            experiments.append(dict(spec_payload))
        else:
            if isinstance(names, str):
                names = [names]
            if not isinstance(names, list) or not names:
                raise JobError("'experiments' must be a non-empty list of names")
            if any(str(name).lower() == "all" for name in names):
                names = list(EXPERIMENTS.names())
            for name in names:
                if name not in EXPERIMENTS:
                    raise JobError(
                        f"unknown experiment {name!r}; registered: "
                        f"{', '.join(EXPERIMENTS.names())}"
                    )
                experiments.append(name)

        if scale is not None:
            for entry in experiments:
                experiment = (
                    EXPERIMENTS.get(entry)
                    if isinstance(entry, str)
                    else ExperimentSpec.from_dict(entry)
                )
                scales = getattr(experiment, "scales", {}) or {}
                if scale not in scales:
                    known_scales = ", ".join(sorted(scales)) or "<none defined>"
                    raise JobError(
                        f"experiment {experiment.name!r} has no scale {scale!r}; "
                        f"known: {known_scales}"
                    )
        return experiments, scale, engine

    def submit(self, payload: Any) -> Tuple[Job, bool]:
        """Queue a validated submission; return ``(job, created)``.

        ``created`` is ``False`` when an identical payload is already
        pending or running — the submission is idempotent while in
        flight.  Completed jobs are never reused as submissions: a
        re-submission gets a fresh job, which resolves against the
        result store and completes in milliseconds when warm.
        """
        experiments, scale, engine = self._parse(payload)
        canonical = _canonical(
            {"experiments": experiments, "scale": scale, "engine": engine}
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
        with self._lock:
            for job_id in reversed(self._order):
                job = self._jobs[job_id]
                if job.id.startswith(digest) and not job.terminal:
                    return job, False
            job = Job(
                id=f"{digest}-{next(self._seq)}",
                payload=json.loads(canonical),
                experiments=[
                    entry if isinstance(entry, str) else entry.get("name", "<inline>")
                    for entry in experiments
                ],
                scale=scale,
                engine=engine,
                created_at=time.time(),
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._executor.submit(self._run, job, experiments)
        return job, True

    # ------------------------------------------------------------------
    # lookup & observation
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job with this id; raises :class:`KeyError` when unknown."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every job, oldest first."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def watch(self, job_id: str, poll_seconds: float = 10.0) -> Iterator[Dict[str, Any]]:
        """Yield status snapshots on every change until the job is terminal.

        The first snapshot is immediate; afterwards the iterator blocks
        on the job's condition variable (waking at least every
        ``poll_seconds`` to re-emit a heartbeat snapshot) and finishes
        with the terminal snapshot.
        """
        job = self.get(job_id)
        last_version = -1
        while True:
            snap = job.snapshot()
            if snap["version"] != last_version:
                last_version = snap["version"]
                yield snap
            if job.terminal:
                return
            with job._cond:
                if job.version == last_version and not job.terminal:
                    job._cond.wait(poll_seconds)

    def close(self) -> None:
        """Stop accepting work and release the job pool."""
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _materialise(
        self, entries: List[Union[str, Dict[str, Any]]]
    ) -> List[Union[ExperimentSpec, DriverExperiment]]:
        ensure_registered()
        experiments: List[Union[ExperimentSpec, DriverExperiment]] = []
        for entry in entries:
            if isinstance(entry, str):
                experiments.append(EXPERIMENTS.get(entry))
            else:
                experiments.append(ExperimentSpec.from_dict(entry))
        return experiments

    def _run(self, job: Job, entries: List[Union[str, Dict[str, Any]]]) -> None:
        """Execute one job end to end (runs on the job pool)."""
        try:
            experiments = self._materialise(entries)
            grid_total = 0
            for experiment in experiments:
                if isinstance(experiment, ExperimentSpec):
                    grid_total += len(
                        experiment.expand(scale=job.scale, engine=job.engine)
                    )
            with job._cond:
                job.state = "running"
                job.started_at = time.time()
                job.total = grid_total
                job._bump()

            offset = 0

            def progress(done: int, total: int, record: RunRecord) -> None:
                with job._cond:
                    job.done = offset + done
                    job._bump()

            out_dir = None
            if self.out_dir is not None:
                out_dir = os.path.join(self.out_dir, job.id)
            runner = CampaignRunner(
                engine=job.engine,
                scale=job.scale,
                out_dir=out_dir,
                resume=True,
                parallel=self.parallel,
                max_workers=self.max_workers,
                progress=progress,
                store=self.store,
            )

            start = time.time()
            total_specs = executed = reused = total_rows = 0
            cache_hits = cache_misses = store_hits = store_misses = 0
            engines_applied: Dict[str, Optional[str]] = {}
            for experiment in experiments:
                result = runner.run(experiment)
                offset += result.stats.total
                engines_applied[experiment.name] = result.applied_engine
                with job._cond:
                    job.rows[experiment.name] = result.rows
                    job.titles[experiment.name] = getattr(experiment, "title", "") or ""
                    job.done = offset
                    job._bump()
                total_specs += result.stats.total
                executed += result.stats.executed
                reused += result.stats.reused
                cache_hits += result.stats.cache_hits
                cache_misses += result.stats.cache_misses
                store_hits += result.stats.store_hits
                store_misses += result.stats.store_misses
                total_rows += len(result.rows)
            elapsed = time.time() - start

            # The EXPERIMENT_SUMMARY shape the CLI prints, as data — the
            # service's status/result bodies and the CLI line stay one
            # vocabulary (CI parses both the same way).
            summary = {
                "experiments": [experiment.name for experiment in experiments],
                "scale": job.scale,
                "engine": job.engine,
                "engines_applied": engines_applied,
                "total_specs": total_specs,
                "executed": executed,
                "reused": reused,
                "cache_hits": cache_hits,
                "cache_misses": cache_misses,
                "store_hits": store_hits,
                "store_misses": store_misses,
                "store_hit_rate": (
                    round(store_hits / total_specs, 4)
                    if self.store is not None and total_specs
                    else None
                ),
                "rows": total_rows,
                "elapsed_seconds": round(elapsed, 3),
                "output": out_dir,
            }
            with job._cond:
                job.summary = summary
                job.total = max(job.total, job.done)
                job.state = "completed"
                job.finished_at = time.time()
                job._bump()
        except Exception as exc:  # noqa: BLE001 - job must fail, not the pool
            with job._cond:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                job._bump()
