"""The ``repro serve`` HTTP surface over :class:`ExperimentService`.

Pure stdlib (:mod:`http.server`), because the experiment service must run
anywhere the simulator runs — CI containers, laptops, air-gapped repro
machines — with zero extra dependencies.  Routes:

===========================================  =====================================
``GET  /healthz``                            liveness + store stats summary
``POST /experiments``                        submit a campaign (JSON body) → 202
``GET  /experiments``                        all jobs, oldest first
``GET  /experiments/<id>``                   one job's status snapshot
``GET  /experiments/<id>?watch=1``           NDJSON stream of snapshots until terminal
``GET  /experiments/<id>/result``            rows + summary (409 until completed)
``GET  /store/stats``                        attached store's :meth:`stats` (404 if none)
===========================================  =====================================

Error contract: every non-2xx body is ``{"error": "..."}``.  Malformed
payloads are 400 (:class:`~repro.service.jobs.JobError`), unknown job ids
404, results of unfinished jobs 409.

The watch stream is close-delimited NDJSON — one JSON snapshot per line,
connection closed after the terminal snapshot — which works over plain
HTTP/1.0 clients (``urllib``) with no chunked-encoding machinery.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .jobs import ExperimentService, JobError

__all__ = ["ServiceServer", "make_server", "serve_forever"]


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server that owns an :class:`ExperimentService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: ExperimentService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    """Request dispatch; all state lives on ``self.server.service``."""

    server: ServiceServer  # narrowed from BaseHTTPRequestHandler
    protocol_version = "HTTP/1.0"  # close-delimited bodies; streams just work

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # tests and CI want machine-parseable stdout, not access logs

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        service = self.server.service
        try:
            if parts == ["healthz"]:
                store = service.store
                self._send_json(
                    200,
                    {
                        "ok": True,
                        "jobs": len(service.jobs()),
                        "store": store.stats().to_dict() if store is not None else None,
                    },
                )
            elif parts == ["experiments"]:
                self._send_json(200, {"jobs": [job.snapshot() for job in service.jobs()]})
            elif len(parts) == 2 and parts[0] == "experiments":
                if query.get("watch", ["0"])[0] in ("1", "true", "yes"):
                    self._watch(parts[1])
                else:
                    self._send_json(200, service.get(parts[1]).snapshot())
            elif len(parts) == 3 and parts[:1] == ["experiments"] and parts[2] == "result":
                job = service.get(parts[1])
                if job.state == "failed":
                    self._error(409, f"job {job.id} failed: {job.error}")
                elif not job.terminal:
                    self._error(409, f"job {job.id} is {job.state}, not completed")
                else:
                    self._send_json(200, job.result_payload())
            elif parts == ["store", "stats"]:
                if service.store is None:
                    self._error(404, "no result store attached (start with --store)")
                else:
                    self._send_json(200, service.store.stats().to_dict())
            else:
                self._error(404, f"no such route: GET {url.path}")
        except KeyError:
            self._error(404, f"unknown job id {parts[1]!r}")
        except BrokenPipeError:  # client hung up mid-stream; nothing to do
            pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts != ["experiments"]:
            self._error(404, f"no such route: POST {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError) as exc:
                raise JobError(f"body is not valid JSON: {exc}") from None
            job, created = self.server.service.submit(payload)
        except JobError as exc:
            self._error(400, str(exc))
            return
        snapshot = job.snapshot()
        snapshot["created"] = created
        self._send_json(202 if created else 200, snapshot)

    # ------------------------------------------------------------------

    def _watch(self, job_id: str) -> None:
        """Stream status snapshots as NDJSON until the job is terminal."""
        job = self.server.service.get(job_id)  # KeyError → 404 in do_GET
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        for snapshot in self.server.service.watch(job.id):
            self.wfile.write((json.dumps(snapshot, default=str) + "\n").encode("utf-8"))
            self.wfile.flush()


def make_server(
    host: str, port: int, service: ExperimentService
) -> ServiceServer:
    """Bind a :class:`ServiceServer` (``port=0`` picks a free port — tests)."""
    return ServiceServer((host, port), service)


def serve_forever(
    server: ServiceServer, *, ready_line: bool = True, in_thread: bool = False
) -> Optional[threading.Thread]:
    """Run the server loop, announcing readiness as a machine-readable line.

    ``SERVE_READY {"host": ..., "port": ...}`` on stdout is the contract CI
    polls for before submitting.  With ``in_thread=True`` the loop runs on
    a daemon thread and the thread is returned (tests).
    """
    host, port = server.server_address[0], server.server_address[1]
    if ready_line:
        print(f"SERVE_READY {json.dumps({'host': host, 'port': port})}", flush=True)
    if in_thread:
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return thread
    server.serve_forever()
    return None
