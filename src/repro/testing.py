"""Protocol conformance checking for downstream protocol authors.

The library's value to a user who writes *their own* anonymous protocol is
partly the substrate and partly the test rig.  :func:`check_protocol_contract`
packages the model-level obligations every protocol must meet — the things
the paper's theorems quietly assume — into one callable battery:

1. **Determinism** — re-running on the same graph and schedule reproduces
   the same outcome, message count and bit count.
2. **Anonymity compliance** — the protocol's behaviour is invariant under
   relabeling of vertex ids (ports preserved): it can only be using the
   ``VertexView``, never hidden identity.
3. **Emission discipline** — every emission targets a valid out-port.
4. **Sane accounting** — ``message_bits`` is non-negative for every payload
   actually sent.
5. *(optional)* **Termination contract** — terminates on the supplied
   "good" graphs and stays quiet on the "bad" ones.

Returns a :class:`ContractReport`; raises :class:`ContractViolation` with a
precise description on the first broken obligation.  Used by this
repository's own test suite against all shipped protocols, which doubles as
the usage example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from .core.model import AnonymousProtocol
from .network.graph import DirectedNetwork
from .network.scheduler import FifoScheduler, RandomScheduler
from .network.simulator import Outcome, RunResult, run_protocol

__all__ = ["ContractViolation", "ContractReport", "check_protocol_contract"]


class ContractViolation(AssertionError):
    """A protocol broke one of the model-level obligations."""


@dataclass
class ContractReport:
    """What was checked and on how many runs."""

    protocol_name: str
    runs: int = 0
    checks: List[str] = field(default_factory=list)

    def note(self, check: str) -> None:
        """Record a passed check."""
        if check not in self.checks:
            self.checks.append(check)


def _relabel(network: DirectedNetwork, permutation: Dict[int, int]) -> DirectedNetwork:
    """Permute vertex ids, preserving each vertex's port order exactly.

    Edges are re-emitted grouped by original tail (in original port order),
    with tails visited in the order of their new ids — so every vertex's
    out-port order and in-port arrival structure transfer through the
    permutation, and an anonymous protocol cannot tell the difference.
    """
    order = sorted(range(network.num_vertices), key=lambda v: permutation[v])
    edges = []
    for tail in order:
        for eid in network.out_edge_ids(tail):
            edges.append((permutation[tail], permutation[network.edge_head(eid)]))
    return DirectedNetwork(
        network.num_vertices,
        edges,
        root=permutation[network.root],
        terminal=permutation[network.terminal],
        validate=False,
    )


def _signature(result: RunResult) -> tuple:
    return (
        result.outcome,
        result.metrics.total_messages,
        result.metrics.total_bits,
        result.metrics.max_message_bits,
    )


def check_protocol_contract(
    protocol_factory: Callable[[], AnonymousProtocol],
    good_networks: Sequence[DirectedNetwork],
    bad_networks: Sequence[DirectedNetwork] = (),
    *,
    random_schedules: int = 2,
) -> ContractReport:
    """Run the conformance battery; see the module docstring.

    Parameters
    ----------
    protocol_factory:
        Zero-argument callable returning a fresh protocol instance.
    good_networks:
        Networks on which the protocol is expected to terminate.
    bad_networks:
        Networks on which it must *not* terminate (pass ``()`` to skip the
        negative contract, e.g. for protocols without a stopping rule).
    random_schedules:
        Seeded random schedules to try per network, in addition to FIFO.
    """
    sample = protocol_factory()
    report = ContractReport(protocol_name=getattr(sample, "name", type(sample).__name__))

    for network in good_networks:
        # 1. Determinism under FIFO.
        first = run_protocol(network, protocol_factory(), FifoScheduler())
        second = run_protocol(network, protocol_factory(), FifoScheduler())
        report.runs += 2
        if _signature(first) != _signature(second):
            raise ContractViolation(
                f"{report.protocol_name}: non-deterministic run on {network!r}"
            )
        report.note("determinism")

        # 5a. Positive termination contract (under every schedule tried).
        if first.outcome is not Outcome.TERMINATED:
            raise ContractViolation(
                f"{report.protocol_name}: failed to terminate on good graph {network!r}"
            )
        for seed in range(random_schedules):
            run = run_protocol(network, protocol_factory(), RandomScheduler(seed=seed))
            report.runs += 1
            if run.outcome is not Outcome.TERMINATED:
                raise ContractViolation(
                    f"{report.protocol_name}: schedule-dependent termination "
                    f"(seed {seed}) on {network!r}"
                )
        report.note("termination-on-good-graphs")

        # 2. Anonymity: behaviour invariant under vertex relabeling.
        permutation = {
            v: (v * 7 + 3) % network.num_vertices for v in range(network.num_vertices)
        }
        if len(set(permutation.values())) != network.num_vertices:
            permutation = {
                v: network.num_vertices - 1 - v for v in range(network.num_vertices)
            }
        relabeled = _relabel(network, permutation)
        mirrored = run_protocol(relabeled, protocol_factory(), FifoScheduler())
        report.runs += 1
        # Outcome and message count must be identical.  Exact bit totals are
        # not required: relabeling permutes *in-port numbers* at multi-in-
        # degree vertices (out-ports are preserved), and a protocol may
        # legitimately mention in-port indices in its messages (the mapping
        # protocol encodes them in edge facts), changing encoded sizes
        # without using any forbidden information.
        if (mirrored.outcome, mirrored.metrics.total_messages) != (
            first.outcome,
            first.metrics.total_messages,
        ):
            raise ContractViolation(
                f"{report.protocol_name}: behaviour changed under vertex "
                f"relabeling — the protocol is using vertex identity"
            )
        report.note("anonymity-invariance")

        # 3/4. Emission discipline and accounting: run with a wrapped
        # message_bits to observe every payload actually sent.
        probe = protocol_factory()
        original_bits = probe.message_bits

        def audited_bits(message):
            bits = original_bits(message)
            if not isinstance(bits, int) or bits < 0:
                raise ContractViolation(
                    f"{report.protocol_name}: message_bits returned {bits!r}"
                )
            return bits

        probe.message_bits = audited_bits  # type: ignore[method-assign]
        run_protocol(network, probe, FifoScheduler())  # SimulationError on bad ports
        report.runs += 1
        report.note("emission-and-accounting")

    for network in bad_networks:
        for seed in range(max(1, random_schedules)):
            run = run_protocol(network, protocol_factory(), RandomScheduler(seed=seed))
            report.runs += 1
            if run.outcome is Outcome.TERMINATED:
                raise ContractViolation(
                    f"{report.protocol_name}: terminated on bad graph {network!r}"
                )
        report.note("non-termination-on-bad-graphs")

    return report
