"""Deterministic replay: recordings are executable, verifiable certificates."""

import pytest

from repro.api import RunSpec, execute_spec
from repro.tracing import ReplayError, TraceReader, capture_traces, replay_trace


def _spec(**overrides):
    base = dict(
        graph="random-dag",
        graph_params={"num_internal": 8},
        protocol="dag-broadcast",
        seed=11,
    )
    base.update(overrides)
    return RunSpec(**base)


def _record(spec, tmp_path, name="t.rtrace"):
    path = str(tmp_path / name)
    with capture_traces(file=path):
        record = execute_spec(spec)
    return record, path


class TestScriptedReplay:
    def test_full_trace_replays_ok(self, tmp_path):
        _, path = _record(_spec(trace="full"), tmp_path)
        report = replay_trace(None, path)
        assert report.ok
        assert report.mode == "scripted"
        assert report.failures == []
        assert "REPLAY OK" in report.summary()

    def test_replay_accepts_matching_spec(self, tmp_path):
        """The pre-override spec (no trace field, any engine) cross-checks."""
        _, path = _record(_spec(trace="full", engine="fastpath"), tmp_path)
        assert replay_trace(_spec(), path).ok

    def test_replay_rejects_wrong_spec(self, tmp_path):
        _, path = _record(_spec(trace="full"), tmp_path)
        with pytest.raises(ReplayError, match="recorded for workload"):
            replay_trace(_spec(seed=12), path)

    def test_replay_accepts_open_reader(self, tmp_path):
        _, path = _record(_spec(trace="full"), tmp_path)
        with TraceReader(path) as reader:
            assert replay_trace(None, reader).ok

    def test_replay_counts_match_recording(self, tmp_path):
        record, path = _record(_spec(trace="full"), tmp_path)
        report = replay_trace(None, path)
        assert report.events_seen == record.metrics["trace_events"]
        assert report.events_written == record.metrics["trace_sampled"]
        assert report.outcome == record.outcome


class TestSampledReplay:
    def test_sampled_trace_reexecutes_ok(self, tmp_path):
        _, path = _record(_spec(trace="sample:3"), tmp_path)
        report = replay_trace(None, path)
        assert report.ok
        assert report.mode == "re-executed"

    def test_sampled_fastpath_recording_replays_on_async(self, tmp_path):
        _, path = _record(_spec(trace="sample:3", engine="fastpath"), tmp_path)
        assert replay_trace(None, path).ok


class TestFaultyReplay:
    def _faulty_spec(self, trace, **fault_overrides):
        faults = {"drop_probability": 0.1, "delay_probability": 0.25}
        faults.update(fault_overrides)
        return RunSpec.from_dict(
            {
                "graph": "random-dag",
                "graph_params": {"num_internal": 8},
                "protocol": "dag-broadcast",
                "seed": 11,
                "trace": trace,
                "faults": faults,
            }
        )

    def test_faulty_full_trace_replays_scripted(self, tmp_path):
        _, path = _record(self._faulty_spec("full"), tmp_path)
        report = replay_trace(None, path)
        assert report.ok, report.failures
        assert report.mode == "scripted"

    def test_duplicating_faults_replay(self, tmp_path):
        _, path = _record(
            self._faulty_spec("full", duplicate_probability=0.3), tmp_path
        )
        assert replay_trace(None, path).ok

    def test_adversary_recording_replays(self, tmp_path):
        spec = RunSpec.from_dict(
            {
                "graph": "random-dag",
                "graph_params": {"num_internal": 8},
                "protocol": "dag-broadcast",
                "seed": 11,
                "trace": "sample:2",
                "faults": {"adversary": "starve-one-edge"},
            }
        )
        _, path = _record(spec, tmp_path)
        report = replay_trace(None, path)
        assert report.ok, report.failures
        assert report.mode == "re-executed"


class TestTamperDetection:
    def test_flipped_column_byte_fails_closed(self, tmp_path):
        _, path = _record(_spec(trace="full"), tmp_path)
        data = bytearray(open(path, "rb").read())
        i = data.find(b'"step"')
        i = data.find(b"}}", i) + 10
        data[i] ^= 0xFF
        open(path, "wb").write(bytes(data))
        report = replay_trace(None, path)
        assert not report.ok
        assert any("checksum mismatch" in f for f in report.failures)
        assert "REPLAY FAILED" in report.summary()

    def test_rewritten_delivery_order_diverges(self, tmp_path):
        """A trace whose column data was forged (with a recomputed footer,
        so the checksum verifies) must fail as a *divergence*."""
        from repro.tracing.format import TraceWriter, payload_digest

        _, path = _record(_spec(trace="full"), tmp_path)
        with TraceReader(path) as reader:
            header = {
                k: reader.header[k]
                for k in ("workload_id", "spec", "seed", "policy", "sample_k")
            }
            columns = {
                name: list(reader.column(name))
                for name in ("step", "edge", "vertex", "kind", "bits", "payload")
            }
            texts = reader.payloads
            footer_result = reader.footer["result"]
        forged = str(tmp_path / "forged.rtrace")
        writer = TraceWriter(forged, header=header)
        # preserve the intern table verbatim, then swap two deliveries
        writer._payloads = list(texts)
        writer._digests = [payload_digest(t) for t in texts]
        order = list(range(len(columns["edge"])))
        order[0], order[-1] = order[-1], order[0]
        for i in order:
            writer.append(
                int(columns["step"][i]),
                int(columns["edge"][i]),
                int(columns["vertex"][i]),
                int(columns["kind"][i]),
                int(columns["bits"][i]),
                int(columns["payload"][i]),
            )
        writer.finalize(result=footer_result)
        report = replay_trace(None, forged)
        assert not report.ok
        assert report.failures


class TestReplayScheduler:
    def test_divergence_message_names_the_delivery(self):
        from repro.tracing.replay import ReplayScheduler

        class _Event:
            def __init__(self, edge_id, payload, seq):
                self.edge_id = edge_id
                self.payload = payload
                self.seq = seq

        scheduler = ReplayScheduler([0], ["'x'"])
        scheduler.push(_Event(1, "y", 0))
        with pytest.raises(ReplayError, match="delivery #1"):
            scheduler.pop()

    def test_script_exhaustion_detected(self):
        from repro.tracing.replay import ReplayScheduler

        class _Event:
            def __init__(self, edge_id, payload, seq):
                self.edge_id = edge_id
                self.payload = payload
                self.seq = seq

        scheduler = ReplayScheduler([], [])
        scheduler.push(_Event(0, "x", 0))
        with pytest.raises(ReplayError, match="diverged"):
            scheduler.pop()
