"""Capture wiring: spec policy, destinations, counters, identity."""

import io
import os

import pytest

from repro.api import RunSpec, SpecError, execute_spec
from repro.tracing import (
    TRACE_DIR_ENV,
    TraceCapture,
    TraceReader,
    capture_traces,
    trace_artifact_path,
    workload_id,
)


def _spec(**overrides):
    base = dict(
        graph="random-dag",
        graph_params={"num_internal": 8},
        protocol="dag-broadcast",
        seed=7,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSpecPolicyField:
    def test_default_is_off(self):
        assert _spec().trace is None

    def test_policy_is_normalised(self):
        assert _spec(trace="sample:08").trace == "sample:8"
        assert _spec(trace="off").trace is None

    def test_invalid_policy_is_a_spec_error(self):
        with pytest.raises(SpecError, match="invalid trace policy"):
            _spec(trace="sometimes")

    def test_unsupported_engine_rejected(self):
        with pytest.raises(SpecError, match="does not support trace capture"):
            _spec(trace="full", engine="synchronous")

    def test_spec_id_neutral_when_off(self):
        """trace=None must hash like the field never existed (PR 5 rule)."""
        assert _spec().spec_id == _spec(trace=None).spec_id == _spec(trace="off").spec_id

    def test_spec_id_distinguishes_policies(self):
        assert _spec(trace="full").spec_id != _spec().spec_id
        assert _spec(trace="full").spec_id != _spec(trace="sample:4").spec_id

    def test_round_trips_through_dict(self):
        spec = _spec(trace="sample:4")
        assert RunSpec.from_dict(spec.to_dict()) == spec


class TestWorkloadId:
    def test_engine_neutral(self):
        assert workload_id(_spec(trace="full", engine="async")) == workload_id(
            _spec(trace="full", engine="fastpath")
        )

    def test_policy_neutral(self):
        assert workload_id(_spec(trace="full")) == workload_id(
            _spec(trace="sample:4")
        ) == workload_id(_spec())

    def test_distinguishes_workloads(self):
        assert workload_id(_spec(seed=7)) != workload_id(_spec(seed=8))


class TestCountersInRecordMetrics:
    def test_counters_folded_into_metrics(self):
        with capture_traces(file=io.BytesIO()):
            record = execute_spec(_spec(trace="full"))
        metrics = record.metrics
        assert metrics["trace_events"] == metrics["total_messages"]
        assert metrics["trace_sampled"] == metrics["trace_events"]
        assert metrics["trace_bytes"] > 0

    def test_sampled_counters(self):
        with capture_traces(file=io.BytesIO()):
            record = execute_spec(_spec(trace="sample:4"))
        metrics = record.metrics
        assert 0 < metrics["trace_sampled"] < metrics["trace_events"]

    def test_record_round_trips_with_trace_extras(self):
        """Satellite: trace_* extras survive RunRecord serialization."""
        from repro.api.spec import RunRecord

        with capture_traces(file=io.BytesIO()):
            record = execute_spec(_spec(trace="full"))
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.metrics["trace_bytes"] == record.metrics["trace_bytes"]

    def test_untraced_runs_carry_no_trace_extras(self):
        record = execute_spec(_spec())
        assert "trace_events" not in record.metrics

    def test_null_sink_still_counts(self):
        """No destination at all: metrics identical, no artifact."""
        record = execute_spec(_spec(trace="full"))
        assert record.metrics["trace_events"] == record.metrics["total_messages"]
        assert record.metrics["trace_bytes"] > 0


class TestDestinations:
    def test_artifact_path_layout(self):
        spec = _spec(trace="full", engine="fastpath")
        path = trace_artifact_path("/tmp/traces", spec)
        assert path == os.path.join("/tmp/traces", spec.spec_id, "7-fastpath.rtrace")
        assert trace_artifact_path("r", _spec(trace="full", seed=None)).endswith(
            os.path.join("none-async.rtrace")
        )

    def test_directory_scope_writes_artifact(self, tmp_path):
        spec = _spec(trace="full")
        with capture_traces(directory=str(tmp_path)):
            execute_spec(spec)
        expected = trace_artifact_path(str(tmp_path), spec)
        assert os.path.exists(expected)
        with TraceReader(expected) as reader:
            assert reader.header["workload_id"] == workload_id(spec)

    def test_directory_scope_exports_env_var(self, tmp_path):
        assert os.environ.get(TRACE_DIR_ENV) is None
        with capture_traces(directory=str(tmp_path)):
            assert os.environ[TRACE_DIR_ENV] == str(tmp_path)
        assert os.environ.get(TRACE_DIR_ENV) is None

    def test_env_var_alone_routes_captures(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        spec = _spec(trace="full")
        execute_spec(spec)
        assert os.path.exists(trace_artifact_path(str(tmp_path), spec))

    def test_file_and_directory_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            with capture_traces(directory=str(tmp_path), file=io.BytesIO()):
                pass

    def test_no_partial_file_left_behind(self, tmp_path):
        """abort() (engine failure path) removes the .tmp artifact."""
        spec = _spec(trace="full")
        network = spec.build_graph()
        destination = str(tmp_path / "t.rtrace")
        capture = TraceCapture(spec, network, destination)
        capture.record(1, 0, "payload", 8)
        capture.abort()
        assert os.listdir(tmp_path) == []

    def test_finalize_is_atomic_rename(self, tmp_path):
        spec = _spec(trace="full")
        record = None
        destination = str(tmp_path / "t.rtrace")
        with capture_traces(file=destination):
            record = execute_spec(spec)
        assert record is not None
        assert os.path.exists(destination)
        assert not os.path.exists(destination + ".tmp")
