"""The ``.rtrace`` container: framing, canonicalisation, fail-closed reads."""

import io

import numpy as np
import pytest

from repro.tracing.format import (
    COLUMNS,
    FORMAT_VERSION,
    KIND_DEFER,
    KIND_DELIVER,
    MAGIC,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    canonical_repr,
    payload_digest,
    states_digest,
)


def _write_sample(destination, *, chunk_events=65536, events=5):
    writer = TraceWriter(
        destination,
        header={"workload_id": "w" * 16, "spec": {"graph": "g"}, "seed": 1,
                "policy": "full", "sample_k": None},
        chunk_events=chunk_events,
    )
    for i in range(events):
        pid = writer.intern(("msg", i % 2))
        writer.append(i + 1, i % 3, (i % 3) + 1, KIND_DELIVER, 8 + i, pid)
    writer.finalize(result={"outcome": "terminated", "terminated": True,
                            "metrics": {"steps": events}, "states_sha256": "x"})
    return writer


class TestWriterReaderRoundTrip:
    def test_columns_and_intern_table_round_trip(self):
        buffer = io.BytesIO()
        _write_sample(buffer, events=5)
        reader = TraceReader(io.BytesIO(buffer.getvalue()))
        assert reader.num_events == 5
        assert list(reader.column("step")) == [1, 2, 3, 4, 5]
        assert list(reader.column("edge")) == [0, 1, 2, 0, 1]
        assert list(reader.column("kind")) == [KIND_DELIVER] * 5
        assert list(reader.column("bits")) == [8, 9, 10, 11, 12]
        # two distinct payloads, interned once each
        assert len(reader.payloads) == 2
        assert reader.payloads[0] == canonical_repr(("msg", 0))
        assert list(reader.column("payload")) == [0, 1, 0, 1, 0]
        assert reader.payload_digests == [
            payload_digest(text) for text in reader.payloads
        ]

    def test_header_carries_format_fields(self):
        buffer = io.BytesIO()
        _write_sample(buffer)
        reader = TraceReader(io.BytesIO(buffer.getvalue()))
        assert reader.header["version"] == FORMAT_VERSION
        assert reader.header["columns"] == list(COLUMNS)
        assert reader.header["policy"] == "full"

    def test_footer_counts_and_result(self):
        buffer = io.BytesIO()
        _write_sample(buffer, events=7)
        reader = TraceReader(io.BytesIO(buffer.getvalue()))
        assert reader.footer["events_written"] == 7
        assert reader.footer["events_seen"] == 7
        assert reader.footer["payload_count"] == 2
        assert reader.footer["result"]["outcome"] == "terminated"

    def test_chunking_is_invisible_to_the_reader(self):
        """Tiny chunk_events → many column blocks → identical columns."""
        one = io.BytesIO()
        _write_sample(one, events=10, chunk_events=3)
        big = io.BytesIO()
        _write_sample(big, events=10, chunk_events=65536)
        chunked = TraceReader(io.BytesIO(one.getvalue()))
        flat = TraceReader(io.BytesIO(big.getvalue()))
        assert chunked.num_events == flat.num_events == 10
        for name in COLUMNS:
            np.testing.assert_array_equal(chunked.column(name), flat.column(name))

    def test_columns_are_read_only(self):
        buffer = io.BytesIO()
        _write_sample(buffer)
        reader = TraceReader(io.BytesIO(buffer.getvalue()))
        with pytest.raises(ValueError):
            reader.column("step")[0] = 99

    def test_empty_trace_round_trips(self):
        buffer = io.BytesIO()
        _write_sample(buffer, events=0)
        reader = TraceReader(io.BytesIO(buffer.getvalue()))
        assert reader.num_events == 0
        assert reader.column("step").size == 0

    def test_path_destination_owns_the_file(self, tmp_path):
        path = str(tmp_path / "t.rtrace")
        _write_sample(path)
        with TraceReader(path) as reader:
            assert reader.num_events == 5

    def test_defer_rows_are_content_free(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, header={"policy": "full"})
        writer.append(3, -1, -1, KIND_DEFER, 0, -1)
        writer.finalize()
        reader = TraceReader(io.BytesIO(buffer.getvalue()))
        assert list(reader.column("kind")) == [KIND_DEFER]
        assert list(reader.column("edge")) == [-1]
        assert list(reader.column("payload")) == [-1]


class TestFailClosedReads:
    def _bytes(self):
        buffer = io.BytesIO()
        _write_sample(buffer)
        return buffer.getvalue()

    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(io.BytesIO(b"NOPE" + self._bytes()))

    def test_version_mismatch(self):
        data = self._bytes()
        bumped = data[: len(MAGIC)] + (99).to_bytes(2, "little") + data[len(MAGIC) + 2:]
        with pytest.raises(TraceFormatError, match="version 99"):
            TraceReader(io.BytesIO(bumped))

    def test_truncated_file(self):
        data = self._bytes()
        with pytest.raises(TraceFormatError, match="truncated|footer"):
            TraceReader(io.BytesIO(data[: len(data) // 2]))

    def test_missing_footer(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, header={"policy": "full"})
        writer.close()  # no finalize
        with pytest.raises(TraceFormatError, match="footer"):
            TraceReader(io.BytesIO(buffer.getvalue()))

    def test_checksum_detects_column_tampering(self):
        data = bytearray(self._bytes())
        # flip a byte inside the raw column region (past the subheader JSON)
        i = data.find(b'"step"')
        i = data.find(b"}}", i) + 10
        data[i] ^= 0xFF
        reader = TraceReader(io.BytesIO(bytes(data)))
        with pytest.raises(TraceFormatError, match="checksum mismatch"):
            reader.verify_checksum()

    def test_pristine_checksum_verifies(self):
        TraceReader(io.BytesIO(self._bytes())).verify_checksum()

    def test_unknown_column_name(self):
        reader = TraceReader(io.BytesIO(self._bytes()))
        with pytest.raises(KeyError):
            reader.column("nope")

    def test_double_finalize_rejected(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, header={})
        writer.finalize()
        with pytest.raises(TraceFormatError, match="already finalized"):
            writer.finalize()


class TestCanonicalRepr:
    def test_sets_are_order_independent(self):
        assert canonical_repr({3, 1, 2}) == canonical_repr({2, 3, 1})

    def test_dicts_are_order_independent(self):
        assert canonical_repr({"b": 1, "a": 2}) == canonical_repr({"a": 2, "b": 1})

    def test_frozenset_distinct_from_set(self):
        assert canonical_repr(frozenset({1})) != canonical_repr({1})

    def test_one_tuples_keep_trailing_comma(self):
        assert canonical_repr((1,)) == "(1,)"
        assert canonical_repr((1,)) != canonical_repr([1])

    def test_nested_containers(self):
        a = {"k": [{2, 1}, (3,)]}
        b = {"k": [{1, 2}, (3,)]}
        assert canonical_repr(a) == canonical_repr(b)

    def test_states_digest_is_order_independent(self):
        assert states_digest({0: {"a", "b"}, 1: "x"}) == states_digest(
            {1: "x", 0: {"b", "a"}}
        )
        assert states_digest({0: "x"}) != states_digest({0: "y"})
