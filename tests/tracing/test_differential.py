"""Engine-identical traces: async and fastpath write byte-identical files.

The differential core of the tracing subsystem.  The ``.rtrace`` format
holds nothing machine- or engine-specific (no timestamps, engine names,
or hash-order-dependent reprs), and both engines call the capture hooks
at the same delivery sites in the same order — so the same workload must
produce the same bytes, across protocols, graph families, seeds, sampling
policies and fault models.
"""

import io

import pytest

from repro.api import RunSpec, execute_spec
from repro.tracing import capture_traces

#: (protocol, graph family, graph params) — one workload per broadcast
#: protocol class on its natural graph family.
WORKLOADS = [
    ("tree-broadcast", "random-grounded-tree", {"num_internal": 8}),
    ("dag-broadcast", "random-dag", {"num_internal": 8}),
    ("general-broadcast", "random-digraph", {"num_internal": 8}),
    ("flooding", "random-digraph", {"num_internal": 6}),
]

SEEDS = (1, 2)


def _trace_bytes(spec):
    buffer = io.BytesIO()
    with capture_traces(file=buffer):
        record = execute_spec(spec)
    return buffer.getvalue(), record


def _spec_dict(protocol, graph, params, seed, engine, trace, faults=None):
    payload = {
        "protocol": protocol,
        "graph": graph,
        "graph_params": params,
        "seed": seed,
        "engine": engine,
        "trace": trace,
    }
    if faults is not None:
        payload["faults"] = faults
    return RunSpec.from_dict(payload)


class TestByteIdenticalAcrossEngines:
    @pytest.mark.parametrize("protocol,graph,params", WORKLOADS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_traces(self, protocol, graph, params, seed):
        async_bytes, async_record = _trace_bytes(
            _spec_dict(protocol, graph, params, seed, "async", "full")
        )
        fast_bytes, fast_record = _trace_bytes(
            _spec_dict(protocol, graph, params, seed, "fastpath", "full")
        )
        assert async_bytes == fast_bytes
        assert len(async_bytes) > 0
        assert (
            async_record.metrics["trace_bytes"]
            == fast_record.metrics["trace_bytes"]
            == len(async_bytes)
        )

    @pytest.mark.parametrize("protocol,graph,params", WORKLOADS[:2])
    def test_sampled_traces(self, protocol, graph, params):
        """Sampling decisions are index-hash-based: engine-independent."""
        async_bytes, _ = _trace_bytes(
            _spec_dict(protocol, graph, params, 3, "async", "sample:3")
        )
        fast_bytes, _ = _trace_bytes(
            _spec_dict(protocol, graph, params, 3, "fastpath", "sample:3")
        )
        assert async_bytes == fast_bytes

    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulty_traces(self, seed):
        """Drop/duplicate/delay hooks fire identically in both engines."""
        faults = {
            "drop_probability": 0.1,
            "duplicate_probability": 0.1,
            "delay_probability": 0.2,
        }
        async_bytes, async_record = _trace_bytes(
            _spec_dict(
                "dag-broadcast", "random-dag", {"num_internal": 8},
                seed, "async", "full", faults,
            )
        )
        fast_bytes, fast_record = _trace_bytes(
            _spec_dict(
                "dag-broadcast", "random-dag", {"num_internal": 8},
                seed, "fastpath", "full", faults,
            )
        )
        assert async_bytes == fast_bytes
        assert async_record.metrics["trace_events"] == fast_record.metrics["trace_events"]

    def test_faulty_sampled_traces(self):
        faults = {"drop_probability": 0.15, "delay_probability": 0.2}
        async_bytes, _ = _trace_bytes(
            _spec_dict(
                "general-broadcast", "random-digraph", {"num_internal": 8},
                2, "async", "sample:2", faults,
            )
        )
        fast_bytes, _ = _trace_bytes(
            _spec_dict(
                "general-broadcast", "random-digraph", {"num_internal": 8},
                2, "fastpath", "sample:2", faults,
            )
        )
        assert async_bytes == fast_bytes

    def test_batch_engine_traces_via_fallback(self):
        """The batch engine's run_one path captures fastpath-identically."""
        fast_bytes, _ = _trace_bytes(
            _spec_dict(
                "dag-broadcast", "random-dag", {"num_internal": 8},
                4, "fastpath", "full",
            )
        )
        batch_bytes, _ = _trace_bytes(
            _spec_dict(
                "dag-broadcast", "random-dag", {"num_internal": 8},
                4, "batch", "full",
            )
        )
        assert batch_bytes == fast_bytes


class TestBatchRunnerTraces:
    def test_run_many_with_traced_specs_falls_back_and_captures(self, tmp_path):
        """Traced specs are never vectorized; run_many still records them."""
        import os

        from repro.api import BatchRunner
        from repro.tracing import trace_artifact_path

        specs = [
            _spec_dict(
                "dag-broadcast", "random-dag", {"num_internal": 8},
                seed, "batch", "full",
            )
            for seed in (1, 2, 3)
        ]
        runner = BatchRunner(parallel=False)
        with capture_traces(directory=str(tmp_path)):
            records = runner.run(specs)
        assert len(records) == 3
        for spec, record in zip(specs, records):
            assert record.metrics["trace_events"] > 0
            assert os.path.exists(trace_artifact_path(str(tmp_path), spec))
