"""Trace profiling: histograms agree between file and in-memory sources."""

import io

import numpy as np

from repro.api import RunSpec, execute_spec, execute_spec_full
from repro.tracing import TraceProfiler, TraceReader, capture_traces
from repro.tracing.format import KIND_DEFER, KIND_DELIVER


def _spec(**overrides):
    base = dict(
        graph="random-dag",
        graph_params={"num_internal": 8},
        protocol="dag-broadcast",
        seed=5,
    )
    base.update(overrides)
    return RunSpec(**base)


def _recorded(spec):
    buffer = io.BytesIO()
    with capture_traces(file=buffer):
        record = execute_spec(spec)
    return record, TraceReader(io.BytesIO(buffer.getvalue()))


class TestFromReader:
    def test_profile_matches_run_metrics(self):
        record, reader = _recorded(_spec(trace="full"))
        profile = TraceProfiler.from_reader(reader).profile()
        assert profile.events == record.metrics["total_messages"]
        assert profile.deliveries == profile.events
        assert profile.deferrals == 0
        assert profile.total_bits == record.metrics["total_bits"]
        assert profile.max_message_bits == record.metrics["max_message_bits"]
        assert profile.max_edge_messages == record.metrics["max_edge_messages"]
        assert profile.termination_step == record.metrics["termination_step"]

    def test_histogram_mass_equals_deliveries(self):
        _, reader = _recorded(_spec(trace="full"))
        profile = TraceProfiler.from_reader(reader).profile()
        for hist in (
            profile.message_size_histogram,
            profile.per_edge_messages,
            profile.per_vertex_load,
        ):
            assert sum(hist.values()) == profile.deliveries

    def test_sampled_profile_counts_sampled_events(self):
        record, reader = _recorded(_spec(trace="sample:4"))
        profile = TraceProfiler.from_reader(reader).profile()
        assert profile.events == record.metrics["trace_sampled"]
        assert profile.events < record.metrics["trace_events"]

    def test_to_dict_is_json_safe(self):
        import json

        _, reader = _recorded(_spec(trace="full"))
        payload = TraceProfiler.from_reader(reader).profile().to_dict()
        parsed = json.loads(json.dumps(payload))
        assert parsed["events"] == payload["events"]
        assert all(isinstance(k, str) for k in parsed["per_edge_messages"])


class TestFromTrace:
    def test_file_and_memory_sources_agree(self):
        """from_reader and from_trace see the same run the same way."""
        spec = _spec(trace="full", record_trace=True)
        buffer = io.BytesIO()
        with capture_traces(file=buffer):
            record, result, net = execute_spec_full(spec)
        file_profile = TraceProfiler.from_reader(
            TraceReader(io.BytesIO(buffer.getvalue()))
        ).profile()
        memory_profile = TraceProfiler.from_trace(
            result.trace, net, termination_step=record.metrics["termination_step"]
        ).profile()
        assert memory_profile == file_profile

    def test_empty_trace(self):
        from repro.network.trace import Trace

        spec = _spec()
        net = spec.build_graph()
        profile = TraceProfiler.from_trace(Trace(), net).profile()
        assert profile.events == 0
        assert profile.message_size_histogram == {}
        assert profile.max_message_bits == 0


class TestDeferralDepths:
    def _profiler(self, kinds):
        n = len(kinds)
        return TraceProfiler(
            step=np.arange(n, dtype=np.int64),
            edge=np.zeros(n, dtype=np.int32),
            vertex=np.zeros(n, dtype=np.int32),
            kind=np.asarray(kinds, dtype=np.int8),
            bits=np.ones(n, dtype=np.int64),
        )

    def test_run_lengths(self):
        d, v = KIND_DEFER, KIND_DELIVER
        profiler = self._profiler([v, d, d, v, d, v, d, d, d])
        assert profiler.deferral_depths() == {1: 1, 2: 1, 3: 1}
        assert profiler.profile().max_deferral_depth == 3
        assert profiler.profile().deferrals == 6

    def test_no_deferrals(self):
        profiler = self._profiler([KIND_DELIVER] * 4)
        assert profiler.deferral_depths() == {}
        assert profiler.profile().max_deferral_depth == 0

    def test_deferrals_excluded_from_delivery_histograms(self):
        profiler = self._profiler([KIND_DELIVER, KIND_DEFER, KIND_DEFER])
        assert sum(profiler.message_size_histogram().values()) == 1

    def test_faulty_run_records_deferrals(self):
        spec = RunSpec.from_dict(
            {
                "graph": "random-dag",
                "graph_params": {"num_internal": 8},
                "protocol": "dag-broadcast",
                "seed": 5,
                "trace": "full",
                "faults": {"delay_probability": 0.4},
            }
        )
        _, reader = _recorded(spec)
        profile = TraceProfiler.from_reader(reader).profile()
        assert profile.deferrals > 0
        assert profile.max_deferral_depth >= 1
        assert profile.events == profile.deliveries + profile.deferrals
