"""Deterministic keep-1-in-k sampling: the cross-engine comparability core."""

from repro.tracing.policy import TracePolicyError, normalize_policy, sample_k
from repro.tracing.sampler import TraceSampler

import pytest


class TestTraceSampler:
    def test_deterministic_across_instances(self):
        a = TraceSampler("abc123", 4)
        b = TraceSampler("abc123", 4)
        assert [a.keep(i) for i in range(200)] == [b.keep(i) for i in range(200)]

    def test_k_one_keeps_everything(self):
        sampler = TraceSampler("w", 1)
        assert all(sampler.keep(i) for i in range(50))

    def test_rate_is_roughly_one_in_k(self):
        kept = sum(TraceSampler("workload", 8).keep(i) for i in range(8000))
        assert 700 <= kept <= 1300  # 1000 expected; generous hash-noise band

    def test_different_keys_sample_differently(self):
        a = [TraceSampler("key-a", 4).keep(i) for i in range(100)]
        b = [TraceSampler("key-b", 4).keep(i) for i in range(100)]
        assert a != b

    def test_different_k_sample_differently(self):
        a = [TraceSampler("key", 4).keep(i) for i in range(100)]
        b = [TraceSampler("key", 5).keep(i) for i in range(100)]
        assert a != b

    def test_decision_depends_only_on_index(self):
        """Query order is irrelevant — engines may interleave arbitrarily."""
        sampler = TraceSampler("key", 3)
        forward = [sampler.keep(i) for i in range(64)]
        backward = [TraceSampler("key", 3).keep(i) for i in reversed(range(64))]
        assert forward == list(reversed(backward))


class TestTracePolicy:
    def test_off_forms_normalise_to_none(self):
        for value in (None, "off", "none", "", "OFF"):
            assert normalize_policy(value) is None

    def test_full(self):
        assert normalize_policy("full") == "full"
        assert normalize_policy("FULL") == "full"
        assert sample_k("full") is None

    def test_sample_k(self):
        assert normalize_policy("sample:8") == "sample:8"
        assert normalize_policy("sample:08") == "sample:8"
        assert sample_k("sample:8") == 8

    def test_bad_policies_raise(self):
        for bad in ("sample", "sample:", "sample:0", "sample:-2", "sample:x", "sometimes"):
            with pytest.raises(TracePolicyError):
                normalize_policy(bad)
