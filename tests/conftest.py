"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core.dyadic import Dyadic
from repro.core.intervals import Interval, IntervalUnion


# ----------------------------------------------------------------------
# Hypothesis strategies for the exact-arithmetic layer
# ----------------------------------------------------------------------


def dyadics(max_num: int = 1 << 16, max_exp: int = 24) -> st.SearchStrategy[Dyadic]:
    """Arbitrary dyadic rationals (positive, negative and zero)."""
    return st.builds(
        Dyadic,
        st.integers(min_value=-max_num, max_value=max_num),
        st.integers(min_value=0, max_value=max_exp),
    )


def unit_dyadics(max_exp: int = 12) -> st.SearchStrategy[Dyadic]:
    """Dyadics in ``[0, 1]`` on a grid of resolution ``2^-max_exp``."""
    def build(k: int, exp: int) -> Dyadic:
        return Dyadic(k, exp)

    return st.integers(min_value=0, max_value=12).flatmap(
        lambda exp: st.integers(min_value=0, max_value=1 << exp).map(
            lambda k: Dyadic(k, exp)
        )
    )


def unit_intervals() -> st.SearchStrategy[Interval]:
    """Intervals ``[a, b) ⊆ [0, 1]`` with dyadic endpoints (may be empty)."""
    return st.tuples(unit_dyadics(), unit_dyadics()).map(
        lambda pair: Interval(min(pair), max(pair))
    )


def unit_interval_unions(max_intervals: int = 5) -> st.SearchStrategy[IntervalUnion]:
    """Interval-unions inside ``[0, 1]`` built from a handful of intervals."""
    return st.lists(unit_intervals(), min_size=0, max_size=max_intervals).map(IntervalUnion)


@pytest.fixture
def small_grounded_tree():
    """A fixed small grounded tree for white-box assertions."""
    from repro.graphs.generators import random_grounded_tree

    return random_grounded_tree(12, seed=42)


@pytest.fixture
def small_digraph():
    """A fixed small cyclic digraph for white-box assertions."""
    from repro.graphs.generators import random_digraph

    return random_digraph(12, seed=42)
