"""Two processes sharing one store: no lost records, no duplicated index rows.

The store's concurrency contract (WAL sqlite + O_APPEND single-write shard
lines) is exercised the way it will actually be stressed: two independent
``BatchRunner`` processes executing *overlapping* spec grids against the
same store root, concurrently.  Afterwards every spec must be retrievable
and intact, the index must hold exactly one row per key, and duplicate
shard lines (both processes racing on the overlap) must be at worst
reclaimable orphans — never corruption.
"""

import json
import os
import subprocess
import sys

from repro.store import ResultStore

from .test_store import make_spec

_WORKER = """
import json, sys
from repro.api import BatchRunner, RunSpec
from repro.store import ResultStore

root, start, stop = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
specs = [
    RunSpec(
        graph="random-grounded-tree",
        graph_params={"num_internal": 8},
        protocol="tree-broadcast",
        seed=seed,
    )
    for seed in range(start, stop)
]
store = ResultStore(root)
runner = BatchRunner(parallel=False, store=store)
records = runner.run(specs, resume=True)
print(json.dumps({"count": len(records), "executed": runner.stats.executed}))
"""


def test_two_processes_share_one_store(tmp_path):
    root = str(tmp_path / "store")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")

    # overlapping grids: seeds 0..11 and 6..17 race on 6..11
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER, root, str(start), str(stop)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        for start, stop in ((0, 12), (6, 18))
    ]
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"worker failed: {err}"
        outputs.append(json.loads(out.strip().splitlines()[-1]))

    assert outputs[0]["count"] == 12 and outputs[1]["count"] == 12

    store = ResultStore(root)
    all_specs = [make_spec(seed=s) for s in range(18)]
    fetched = store.get_many(all_specs)
    # no lost records: every spec either process ran is retrievable
    assert len(fetched) == 18
    # no duplicated index rows: one per key
    assert store.stats().records == 18
    # duplicate shard lines from the racing overlap are at worst orphans;
    # nothing is corrupt and nothing indexed is unservable
    report = store.verify()
    assert report.corrupt_lines == 0
    assert report.missing == []
    # records parse and carry the right specs
    for spec in all_specs:
        assert fetched[spec.spec_id].spec.spec_id == spec.spec_id


def test_interleaved_writers_in_one_process(tmp_path):
    """Same contract, deterministic interleaving: two store handles, alternating puts."""
    from repro.api import execute_spec

    root = str(tmp_path / "store")
    store_a, store_b = ResultStore(root), ResultStore(root)
    records = [execute_spec(make_spec(seed=s)) for s in range(6)]
    for i, record in enumerate(records):
        (store_a if i % 2 == 0 else store_b).put(record)
        # both handles racing on the same record: second put is a no-op
        (store_b if i % 2 == 0 else store_a).put(record)
    assert store_a.stats().records == 6
    assert len(store_b.get_many([r.spec for r in records])) == 6
    assert store_a.verify().clean
