"""BatchRunner/CampaignRunner + store wiring: O(pending) resume semantics."""

import pytest

from repro.api import BatchRunner, CampaignRunner, load_records, run_specs
from repro.api.campaign import ExperimentSpec
from repro.store import ResultStore

from .test_store import make_spec


def grid_specs(n=4):
    return [make_spec(seed=s) for s in range(n)]


class TestBatchRunnerStore:
    def test_cold_run_publishes_every_record(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        runner = BatchRunner(parallel=False, store=store)
        specs = grid_specs()
        runner.run(specs)
        assert runner.stats.store_hits == 0
        assert runner.stats.store_misses == len(specs)
        assert store.stats().records == len(specs)

    def test_warm_run_executes_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        specs = grid_specs()
        cold = BatchRunner(parallel=False, store=store).run(specs)
        warm_runner = BatchRunner(parallel=False, store=store)
        warm = warm_runner.run(specs)
        assert warm_runner.stats.executed == 0
        assert warm_runner.stats.store_hits == len(specs)
        assert [r.to_json() for r in warm] == [r.to_json() for r in cold]

    def test_warm_resume_does_not_parse_jsonl(self, tmp_path, monkeypatch):
        """O(pending): a fully store-served batch never reads the JSONL file."""
        store = ResultStore(str(tmp_path / "store"))
        specs = grid_specs()
        out = str(tmp_path / "out.jsonl")
        BatchRunner(parallel=False, store=store).run(specs, output_path=out)

        def explode(path):
            raise AssertionError("load_records called on a fully store-served batch")

        monkeypatch.setattr("repro.api.runner.load_records", explode)
        runner = BatchRunner(parallel=False, store=store)
        fresh_out = str(tmp_path / "fresh.jsonl")
        records = runner.run(specs, output_path=fresh_out)
        assert runner.stats.executed == 0
        # the output file is still (re)written from the served records
        assert len(load_records(fresh_out)) == len(specs)
        assert [r.spec for r in records] == specs

    def test_warm_parallel_run_never_builds_a_pool(self, tmp_path, monkeypatch):
        """Acceptance bar: cache-served batches spawn no worker processes."""
        store = ResultStore(str(tmp_path / "store"))
        specs = grid_specs()
        BatchRunner(parallel=False, store=store).run(specs)

        class PoolBomb:
            def __init__(self, *args, **kwargs):
                raise AssertionError("ProcessPoolExecutor built for a warm batch")

        monkeypatch.setattr("repro.api.runner.ProcessPoolExecutor", PoolBomb)
        runner = BatchRunner(parallel=True, max_workers=2, store=store)
        records = runner.run(specs)
        assert runner.stats.executed == 0
        assert len(records) == len(specs)

    def test_legacy_jsonl_absorbed_into_store(self, tmp_path):
        """Old artifact dirs migrate into the store the first time they resume."""
        specs = grid_specs()
        out = str(tmp_path / "legacy.jsonl")
        BatchRunner(parallel=False).run(specs, output_path=out)  # no store: JSONL only

        store = ResultStore(str(tmp_path / "store"))
        runner = BatchRunner(parallel=False, store=store)
        runner.run(specs, output_path=out)
        assert runner.stats.executed == 0  # served by the file...
        assert store.stats().records == len(specs)  # ...and absorbed

        # second resume is now served by the store index
        runner2 = BatchRunner(parallel=False, store=store)
        runner2.run(specs, output_path=out)
        assert runner2.stats.store_hits == len(specs)

    def test_no_resume_skips_store_reads_but_still_publishes(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        specs = grid_specs(2)
        BatchRunner(parallel=False, store=store).run(specs)
        runner = BatchRunner(parallel=False, store=store)
        runner.run(specs, resume=False)
        assert runner.stats.executed == len(specs)
        assert runner.stats.store_hits == 0 and runner.stats.store_misses == 0

    def test_run_specs_passes_store_through(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        specs = grid_specs(2)
        run_specs(specs, parallel=False, store=store)
        assert store.stats().records == len(specs)


class TestCampaignRunnerStore:
    def campaign(self):
        return ExperimentSpec(
            name="store-wiring",
            base={
                "graph": "random-grounded-tree",
                "graph_params": {"num_internal": 8},
                "protocol": "tree-broadcast",
            },
            axes={"seed": [0, 1, 2]},
        )

    def test_grid_campaign_resolves_via_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        runner = CampaignRunner(store=store)
        cold = runner.run(self.campaign())
        assert cold.stats.store_misses == 3
        warm = CampaignRunner(store=store).run(self.campaign())
        assert warm.stats.executed == 0
        assert warm.stats.store_hits == 3
        assert warm.rows == cold.rows

    def test_store_spans_artifact_dirs(self, tmp_path):
        """Different out_dirs, same store: the second campaign is all hits."""
        store = ResultStore(str(tmp_path / "store"))
        CampaignRunner(store=store, out_dir=str(tmp_path / "a")).run(self.campaign())
        runner = CampaignRunner(store=store, out_dir=str(tmp_path / "b"))
        result = runner.run(self.campaign())
        assert result.stats.executed == 0
        assert result.stats.store_hits == 3
        assert (tmp_path / "b" / "store-wiring.rows.json").exists()
