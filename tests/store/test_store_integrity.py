"""Store integrity: verify, gc, and corruption quarantine + recompute."""

import json
import os

from repro.api import BatchRunner, execute_spec
from repro.store import ResultStore, shard_name

from .test_store import make_spec


def populate(store, seeds=(0, 1, 2)):
    records = [execute_spec(make_spec(seed=s)) for s in seeds]
    store.put_many(records)
    return records


class TestVerify:
    def test_clean_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        records = populate(store)
        report = store.verify()
        assert report.clean
        assert report.records_checked == len(records)
        assert report.missing == [] and report.mismatched == []

    def test_orphan_lines_reported_not_fatal(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        [record] = populate(store, seeds=(0,))
        shard = tmp_path / "store" / "shards" / shard_name(record.spec.spec_id)
        # a crash between shard append and index insert leaves an orphan
        # line: same envelope shape, no index row
        orphan = execute_spec(make_spec(seed=77))
        key = store.key_for(orphan.spec)
        import hashlib

        record_json = orphan.to_json()
        envelope = json.dumps(
            {
                "key": key.to_list(),
                "record": json.loads(record_json),
                "sha256": hashlib.sha256(record_json.encode()).hexdigest(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write(envelope + "\n")
        report = store.verify()
        assert report.clean  # orphans are reclaimable, not corruption
        assert report.orphan_lines == 1

    def test_corrupt_line_reported(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        [record] = populate(store, seeds=(0,))
        shard = tmp_path / "store" / "shards" / shard_name(record.spec.spec_id)
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"key": [1], "truncat\n')
        report = store.verify()
        assert report.corrupt_lines == 1
        # the indexed record itself is still intact
        assert report.missing == []


class TestGc:
    def test_compaction_reclaims_orphans(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        [record] = populate(store, seeds=(0,))
        shard = tmp_path / "store" / "shards" / shard_name(record.spec.spec_id)
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write("garbage that is not json\n")
        before = shard.stat().st_size
        report = store.gc()
        assert report.dropped_lines == 1
        assert shard.stat().st_size < before
        assert store.get(record.spec) is not None  # live record survives

    def test_keep_days_expires_old_records(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        records = populate(store)
        # age every index row well past the cutoff
        conn = store._connection()
        conn.execute("UPDATE records SET created_at = created_at - 40 * 86400")
        conn.commit()
        report = store.gc(keep_days=30)
        assert report.removed_records == len(records)
        assert store.stats().records == 0
        # expired shards are deleted outright
        assert list((tmp_path / "store" / "shards").glob("*.jsonl")) == []

    def test_gc_noop_on_clean_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        populate(store)
        report = store.gc()
        assert report.removed_records == 0
        assert report.dropped_lines == 0
        assert store.verify().clean


class TestCorruptionQuarantine:
    """A truncated shard is quarantined and its specs recomputed — never a crash."""

    def test_truncated_shard_quarantined_and_recomputed(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        specs = [make_spec(seed=s) for s in range(3)]
        originals = BatchRunner(parallel=False, store=store).run(specs)

        # truncate one record's shard mid-line: its indexed record becomes
        # unservable
        victim = originals[0]
        shard = tmp_path / "store" / "shards" / shard_name(victim.spec.spec_id)
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2])

        runner = BatchRunner(parallel=False, store=ResultStore(root))
        records = runner.run(specs, resume=True)
        # every record comes back correct...
        for fresh, original in zip(records, originals):
            assert fresh.comparable_dict() == original.comparable_dict()
        # ...the corrupt shard was quarantined, not crashed on...
        quarantined = list((tmp_path / "store" / "quarantine").iterdir())
        assert quarantined, "corrupt shard should be moved to quarantine/"
        # ...and the victim spec was actually re-executed
        assert runner.stats.executed >= 1
        assert runner.stats.store_hits < len(specs)

        # the store heals: the recomputed record is stored and verify is clean
        healed = ResultStore(root)
        assert healed.get(victim.spec) is not None
        assert healed.verify().clean

    def test_deleted_shard_treated_as_missing(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        [record] = populate(store, seeds=(0,))
        shard = tmp_path / "store" / "shards" / shard_name(record.spec.spec_id)
        os.remove(shard)
        assert store.get(record.spec) is None  # unservable, not an exception
        report = ResultStore(root).verify()
        assert report.clean  # quarantine purged the dangling index rows
