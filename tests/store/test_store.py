"""ResultStore core: keying, round-trips, resolution, backends."""

import json
import os

import pytest

from repro.api import BatchRunner, RunSpec, execute_spec
from repro.api.registry import STORE_BACKENDS
from repro.store import (
    STORE_ENV_VAR,
    LocalBackend,
    RemoteBackendStub,
    ResultStore,
    StoreBackendError,
    StoreError,
    StoreKey,
    current_code_version,
    resolve_store,
    shard_name,
)


def make_spec(seed=0, n=8, engine=None, label=None):
    kwargs = {}
    if engine is not None:
        kwargs["engine"] = engine
    if label is not None:
        kwargs["label"] = label
    return RunSpec(
        graph="random-grounded-tree",
        graph_params={"num_internal": n},
        protocol="tree-broadcast",
        seed=seed,
        **kwargs,
    )


class TestKeys:
    def test_key_fields_mirror_spec(self):
        spec = make_spec(seed=7, engine="fastpath")
        key = StoreKey.for_spec(spec)
        assert key.spec_id == spec.spec_id
        assert key.seed == 7
        assert key.engine == "fastpath"
        assert key.code_version == current_code_version()

    def test_label_does_not_change_key(self):
        assert (
            StoreKey.for_spec(make_spec(label="a")).spec_id
            == StoreKey.for_spec(make_spec(label="b")).spec_id
        )

    def test_shard_is_spec_id_prefix(self):
        spec = make_spec()
        assert StoreKey.for_spec(spec).shard == shard_name(spec.spec_id)
        assert shard_name(spec.spec_id) == f"{spec.spec_id[:2]}.jsonl"

    def test_code_version_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_CODE_VERSION", "test-override")
        assert current_code_version() == "test-override"

    def test_round_trips_through_list(self):
        key = StoreKey.for_spec(make_spec(seed=3))
        assert StoreKey.from_list(key.to_list()) == key


class TestRoundTrip:
    def test_put_get_exact_json(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        record = execute_spec(make_spec(seed=1))
        store.put(record)
        fetched = store.get(record.spec)
        assert fetched is not None
        # byte-identical, timing fields included — the store returns the
        # stored record, it does not re-execute
        assert fetched.to_json() == record.to_json()

    def test_get_missing_is_none(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert store.get(make_spec(seed=99)) is None
        assert not store.contains(make_spec(seed=99))

    def test_put_many_counts_and_dedupes(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        records = [execute_spec(make_spec(seed=s)) for s in range(3)]
        assert store.put_many(records + records) == 3  # intra-batch dupes skipped
        assert store.put_many(records) == 0  # already stored
        assert store.stats().records == 3

    def test_code_version_partitions_records(self, tmp_path):
        record = execute_spec(make_spec(seed=1))
        store_a = ResultStore(str(tmp_path / "store"), code_version="1.0")
        store_a.put(record)
        store_b = ResultStore(str(tmp_path / "store"), code_version="2.0")
        assert store_b.get(record.spec) is None  # old results invalidated
        assert store_a.get(record.spec) is not None

    def test_ls_prefix(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        record = execute_spec(make_spec(seed=1))
        store.put(record)
        rows = store.ls(record.spec.spec_id[:4])
        assert len(rows) == 1
        assert rows[0]["spec_id"] == record.spec.spec_id
        with pytest.raises(StoreError):
            store.ls("not-hex!")

    def test_layout_on_disk(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root))
        record = execute_spec(make_spec(seed=1))
        store.put(record)
        assert (root / "index.sqlite").exists()
        shard = root / "shards" / shard_name(record.spec.spec_id)
        assert shard.exists()
        envelope = json.loads(shard.read_text().splitlines()[0])
        assert set(envelope) == {"key", "record", "sha256"}


class TestResolveStore:
    def test_no_store_wins(self, tmp_path):
        assert (
            resolve_store(str(tmp_path), no_store=True, env={STORE_ENV_VAR: str(tmp_path)})
            is None
        )

    def test_explicit_path_beats_env(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        store = resolve_store(str(a), env={STORE_ENV_VAR: str(b)})
        assert store is not None and store.root == str(a)

    def test_env_fallback(self, tmp_path):
        store = resolve_store(env={STORE_ENV_VAR: str(tmp_path / "envstore")})
        assert store is not None and store.root == str(tmp_path / "envstore")

    def test_nothing_resolves_to_none(self):
        assert resolve_store(env={}) is None


class TestBackends:
    def test_registry_entries(self):
        assert "local" in STORE_BACKENDS
        assert "remote" in STORE_BACKENDS
        assert STORE_BACKENDS.get("local") is LocalBackend

    def test_remote_stub_constructs_but_refuses_io(self):
        backend = RemoteBackendStub(url="https://example.invalid/store")
        with pytest.raises(StoreBackendError):
            backend.read_bytes("00.jsonl")
        with pytest.raises(StoreBackendError):
            backend.append_line("00.jsonl", b"{}")

    def test_store_accepts_backend_by_name(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"), backend="local")
        record = execute_spec(make_spec(seed=2))
        store.put(record)
        assert store.get(record.spec) is not None


class TestDifferentialStoreVsFresh:
    """Acceptance bar: fetched records are JSON-identical to fresh execution."""

    @pytest.mark.parametrize("engine", ["async", "fastpath"])
    def test_grid_identical_modulo_timing(self, tmp_path, engine):
        specs = [
            make_spec(seed=seed, n=n, engine=engine)
            for seed in (0, 1, 2)
            for n in (6, 10)
        ]
        store = ResultStore(str(tmp_path / "store"))
        originals = BatchRunner(parallel=False, store=store).run(specs)
        fetched = store.get_many(specs)
        assert len(fetched) == len(specs)
        for original in originals:
            stored = fetched[original.spec.spec_id]
            # exact: the stored bytes are the executed record's bytes
            assert stored.to_json() == original.to_json()
            # and a fresh execution agrees on everything but timing
            assert (
                execute_spec(original.spec).comparable_dict()
                == stored.comparable_dict()
            )
