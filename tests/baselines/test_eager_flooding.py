"""Tests for the eager-DAG and flooding baselines (ablations E10 and the
motivating no-termination example)."""

import pytest

from repro.baselines.eager_dag import EagerDagBroadcastProtocol
from repro.baselines.flooding import FloodingProtocol
from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.graphs.generators import layered_diamond_dag, random_dag, random_digraph
from repro.network.simulator import Outcome, run_protocol


class TestEagerDag:
    def test_correct_on_dags(self):
        net = random_dag(30, seed=1)
        result = run_protocol(net, EagerDagBroadcastProtocol())
        assert result.terminated

    def test_message_blowup_on_diamonds(self):
        # Path multiplicity doubles per layer: 2^depth-ish messages.
        shallow = run_protocol(layered_diamond_dag(4), EagerDagBroadcastProtocol())
        deep = run_protocol(layered_diamond_dag(8), EagerDagBroadcastProtocol())
        assert deep.metrics.total_messages > 10 * shallow.metrics.total_messages

    def test_waiting_variant_stays_linear(self):
        for depth in (4, 8):
            net = layered_diamond_dag(depth)
            result = run_protocol(net, DagBroadcastProtocol())
            assert result.metrics.total_messages == net.num_edges

    def test_exponential_vs_linear_shape(self):
        from repro.analysis.scaling import semilog_slope

        depths = [2, 4, 6, 8]
        eager = []
        waiting = []
        for depth in depths:
            net = layered_diamond_dag(depth)
            eager.append(run_protocol(net, EagerDagBroadcastProtocol()).metrics.total_messages)
            waiting.append(run_protocol(net, DagBroadcastProtocol()).metrics.total_messages)
        assert semilog_slope(depths, eager) > 0.8  # ~2^depth
        assert semilog_slope(depths, waiting) < 0.4  # linear


class TestFlooding:
    def test_delivers_everywhere_one_message_per_edge(self):
        net = random_digraph(25, seed=3)
        result = run_protocol(net, FloodingProtocol("m"))
        assert result.metrics.total_messages == net.num_edges
        for v in range(net.num_vertices):
            if v != net.root:
                assert result.states[v].got_broadcast

    def test_never_terminates(self):
        net = random_digraph(15, seed=1)
        result = run_protocol(net, FloodingProtocol("m"))
        assert result.outcome is Outcome.QUIESCENT

    def test_cost_floor(self):
        # Flooding pays exactly (1 + |m|) bits per edge — the |E|·|m| floor.
        net = random_digraph(20, seed=2)
        result = run_protocol(net, FloodingProtocol("ab"))  # 16 payload bits
        assert result.metrics.total_bits == net.num_edges * 17
