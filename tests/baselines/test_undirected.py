"""Tests for the undirected substrate and its feedback-based protocols."""

import math

import pytest

from repro.baselines.undirected import (
    DfsLabelingProtocol,
    EchoBroadcastProtocol,
    UndirectedNetwork,
    run_undirected_protocol,
)
from repro.graphs.generators import random_digraph, random_grounded_tree


def ring(n: int) -> UndirectedNetwork:
    return UndirectedNetwork(n, [(i, (i + 1) % n) for i in range(n)], initiator=0)


class TestUndirectedNetwork:
    def test_ports_consistent(self):
        net = ring(5)
        for v in range(5):
            assert net.degree(v) == 2
            for port in range(net.degree(v)):
                other = net.neighbor(v, port)
                back = net.peer_port(v, port)
                assert net.neighbor(other, back) == v

    def test_from_directed_collapses_antiparallel(self):
        from repro.network.graph import DirectedNetwork

        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        und = UndirectedNetwork.from_directed(net)
        assert und.num_links == 3  # 2⇄3 collapses to one link
        assert und.initiator == 0
        assert und.is_connected()

    def test_self_links_rejected(self):
        with pytest.raises(ValueError):
            UndirectedNetwork(2, [(0, 0)], initiator=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UndirectedNetwork(0, [])
        with pytest.raises(ValueError):
            UndirectedNetwork(2, [(0, 1)], initiator=5)


class TestEchoBroadcast:
    @pytest.mark.parametrize("seed", [None, 0, 1, 2])
    def test_finishes_and_informs_everyone(self, seed):
        net = UndirectedNetwork.from_directed(random_digraph(20, seed=3))
        result = run_undirected_protocol(net, EchoBroadcastProtocol("m"), seed=seed)
        assert result.finished
        for state in result.states.values():
            assert state.informed
            assert state.payload == "m" or state.payload is None and state.degree == 0

    def test_exactly_two_messages_per_link(self):
        net = ring(8)
        result = run_undirected_protocol(net, EchoBroadcastProtocol())
        assert result.total_messages == 2 * net.num_links

    def test_constant_message_size(self):
        net = ring(50)
        result = run_undirected_protocol(net, EchoBroadcastProtocol())
        assert result.max_message_bits == 1  # tag bit, no payload


class TestDfsLabeling:
    @pytest.mark.parametrize("seed", [None, 0, 5])
    def test_unique_labels(self, seed):
        net = UndirectedNetwork.from_directed(random_digraph(25, seed=1))
        result = run_undirected_protocol(net, DfsLabelingProtocol(), seed=seed)
        assert result.finished
        labels = [s["label"] for s in result.states.values()]
        assert None not in labels
        assert len(set(labels)) == net.num_vertices

    def test_labels_are_compact(self):
        net = UndirectedNetwork.from_directed(random_digraph(30, seed=2))
        result = run_undirected_protocol(net, DfsLabelingProtocol())
        max_label = max(s["label"] for s in result.states.values())
        assert max_label == net.num_vertices - 1  # labels 0..V-1

    def test_label_bits_logarithmic(self):
        for n in (10, 40):
            net = UndirectedNetwork.from_directed(random_digraph(n, seed=0))
            result = run_undirected_protocol(net, DfsLabelingProtocol())
            max_label = max(s["label"] for s in result.states.values())
            assert math.ceil(math.log2(max_label + 1)) <= math.ceil(
                math.log2(net.num_vertices)
            )

    def test_token_walk_message_count(self):
        # The token crosses each link at most twice in each direction.
        net = ring(10)
        result = run_undirected_protocol(net, DfsLabelingProtocol())
        assert result.total_messages <= 4 * net.num_links
