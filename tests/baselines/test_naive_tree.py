"""Tests for the naive x/d grounded-tree baseline (ablation E9)."""

from fractions import Fraction

import pytest

from repro.baselines.naive_tree import NaiveTreeBroadcastProtocol, RationalToken
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import path_network, random_grounded_tree
from repro.network.simulator import Outcome, run_protocol


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_terminates_on_grounded_trees(self, seed):
        net = random_grounded_tree(40, seed=seed)
        result = run_protocol(net, NaiveTreeBroadcastProtocol())
        assert result.terminated
        assert result.states[net.terminal].received_sum == 1

    def test_delivers_payload(self):
        net = random_grounded_tree(25, seed=1)
        result = run_protocol(net, NaiveTreeBroadcastProtocol("naive"))
        for v in range(net.num_vertices):
            if v != net.root:
                assert result.states[v].payload == "naive"

    def test_dead_end_blocks_termination(self):
        from repro.network.graph import DirectedNetwork

        net = DirectedNetwork(
            5, [(0, 2), (2, 3), (2, 1)], root=0, terminal=1, validate=False
        )
        result = run_protocol(net, NaiveTreeBroadcastProtocol())
        assert result.outcome is Outcome.QUIESCENT


class TestCostGap:
    def test_values_not_powers_of_two(self):
        # A vertex of out-degree 3 forces denominator 3 into the stream.
        from repro.network.graph import DirectedNetwork

        net = DirectedNetwork(
            6,
            [(0, 2), (2, 3), (2, 4), (2, 5), (3, 1), (4, 1), (5, 1)],
            root=0,
            terminal=1,
        )
        result = run_protocol(net, NaiveTreeBroadcastProtocol(), record_trace=True)
        values = {record.payload.value for record in result.trace.deliveries}
        assert Fraction(1, 3) in values

    def test_costs_exceed_pow2_rule(self):
        net = random_grounded_tree(150, seed=2)
        naive = run_protocol(net, NaiveTreeBroadcastProtocol())
        pow2 = run_protocol(net, TreeBroadcastProtocol())
        assert naive.metrics.total_bits > pow2.metrics.total_bits
        assert naive.metrics.max_message_bits > pow2.metrics.max_message_bits

    def test_gap_widens_with_size(self):
        ratios = []
        for n in (50, 200):
            net = random_grounded_tree(n, seed=0)
            naive = run_protocol(net, NaiveTreeBroadcastProtocol())
            pow2 = run_protocol(net, TreeBroadcastProtocol())
            ratios.append(naive.metrics.total_bits / pow2.metrics.total_bits)
        assert ratios[1] > ratios[0]


def test_token_bits_track_denominator():
    small = RationalToken(Fraction(1, 2))
    large = RationalToken(Fraction(1, 3**20))
    assert large.structure_bits() > small.structure_bits()
