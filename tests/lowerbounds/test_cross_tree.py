"""Tests for the cross-tree half of Theorem 3.6."""

import pytest

from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.constructions import caterpillar_gn
from repro.graphs.generators import path_network, random_grounded_tree
from repro.lowerbounds.alphabet import verify_cut_incomparability_cross


def test_across_random_trees():
    pairs = [
        (random_grounded_tree(8, seed=seed), TreeBroadcastProtocol()) for seed in range(3)
    ]
    assert verify_cut_incomparability_cross(pairs, max_cuts=40) > 0


def test_across_tree_families():
    pairs = [
        (caterpillar_gn(4), TreeBroadcastProtocol()),
        (path_network(5), TreeBroadcastProtocol()),
        (random_grounded_tree(6, seed=9), TreeBroadcastProtocol()),
    ]
    assert verify_cut_incomparability_cross(pairs, max_cuts=40) > 0


def test_single_network_degenerates_to_within_tree():
    pairs = [(caterpillar_gn(4), TreeBroadcastProtocol())]
    from repro.lowerbounds.alphabet import verify_cut_incomparability

    cross = verify_cut_incomparability_cross(pairs, max_cuts=40)
    within = verify_cut_incomparability(caterpillar_gn(4), TreeBroadcastProtocol(), max_cuts=40)
    assert cross == within
