"""Tests for the schedule-space model checker and graph enumeration."""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.enumerate_graphs import all_grounded_trees, all_internal_wirings
from repro.graphs.properties import is_grounded_tree
from repro.lowerbounds.schedules import explore_all_schedules
from repro.network.graph import DirectedNetwork


class TestEnumeration:
    def test_tree_counts(self):
        # k internal vertices: (k-1)! parent assignments × 2^(#non-leaf)
        assert len(list(all_grounded_trees(1))) == 1
        assert len(list(all_grounded_trees(2))) == 2
        assert len(list(all_grounded_trees(3))) == 6

    def test_trees_are_grounded_trees(self):
        for net in all_grounded_trees(3):
            assert is_grounded_tree(net)
            assert net.all_reachable_from_root()
            assert net.all_connected_to_terminal()

    def test_wirings_satisfy_model(self):
        nets = list(all_internal_wirings(2))
        assert len(nets) == 24
        for net in nets:
            assert net.in_degree(net.root) == 0
            assert net.out_degree(net.terminal) == 0
            assert net.all_reachable_from_root()
        # Both connected and disconnected cases occur — what the iff needs.
        assert any(net.all_connected_to_terminal() for net in nets)
        assert any(not net.all_connected_to_terminal() for net in nets)

    def test_wirings_limit(self):
        assert len(list(all_internal_wirings(2, limit=5))) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            list(all_grounded_trees(0))
        with pytest.raises(ValueError):
            list(all_internal_wirings(0))


class TestExploration:
    def test_single_path_single_schedule(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, TreeBroadcastProtocol)
        assert result.always_terminates
        assert result.executions == 1  # no concurrency, no branching

    def test_branching_counts_multiple_executions(self):
        # Two parallel chains → interleavings exist.
        net = DirectedNetwork(
            6, [(0, 2), (2, 3), (2, 4), (3, 1), (4, 1)], root=0, terminal=1
        )
        result = explore_all_schedules(net, TreeBroadcastProtocol)
        assert result.always_terminates
        assert result.executions >= 1
        assert result.steps > net.num_edges  # explored more than one branch

    def test_cycle_always_terminates(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, GeneralBroadcastProtocol)
        assert result.always_terminates

    def test_dead_end_never_terminates_any_schedule(self):
        net = DirectedNetwork(
            5, [(0, 2), (2, 3), (2, 1)], root=0, terminal=1, validate=False
        )
        result = explore_all_schedules(net, GeneralBroadcastProtocol)
        assert result.never_terminates

    def test_labeling_all_schedules(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, LabelAssignmentProtocol)
        assert result.always_terminates

    def test_truncation_reported(self):
        net = DirectedNetwork(
            4, [(0, 2), (2, 3), (2, 3), (3, 1), (3, 1)], root=0, terminal=1
        )
        result = explore_all_schedules(net, GeneralBroadcastProtocol, max_steps_total=3)
        assert result.truncated

    def test_invariant_hook(self):
        from repro.core.intervals import UNIT_UNION

        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)

        def coverage_bounded(states):
            for state in states.values():
                if not UNIT_UNION.contains_union(state.covered()):
                    return False
            return True

        result = explore_all_schedules(
            net, GeneralBroadcastProtocol, invariant=coverage_bounded
        )
        assert result.always_terminates

    def test_invariant_violation_raises(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        with pytest.raises(AssertionError):
            explore_all_schedules(
                net, TreeBroadcastProtocol, invariant=lambda states: False
            )


class TestIffExhaustive:
    """The headline: the iff theorem, machine-checked on small instances."""

    def test_all_grounded_trees_always_terminate(self):
        for net in all_grounded_trees(3):
            result = explore_all_schedules(net, TreeBroadcastProtocol)
            assert not result.truncated
            assert result.always_terminates

    def test_iff_on_sparse_wirings(self):
        for net in all_internal_wirings(2):
            if net.num_edges > 5:
                continue  # densest cases covered by sampled schedules
            result = explore_all_schedules(
                net, GeneralBroadcastProtocol, max_steps_total=400_000
            )
            assert not result.truncated
            if net.all_connected_to_terminal():
                assert result.always_terminates, net.to_dot()
            else:
                assert result.never_terminates, net.to_dot()
