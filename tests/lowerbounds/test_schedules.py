"""Tests for the schedule-space model checker and graph enumeration."""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.enumerate_graphs import all_grounded_trees, all_internal_wirings
from repro.graphs.properties import is_grounded_tree
from repro.lowerbounds.schedules import (
    TranspositionTable,
    explore_all_schedules,
)
from repro.network.graph import DirectedNetwork


class TestEnumeration:
    def test_tree_counts(self):
        # k internal vertices: (k-1)! parent assignments × 2^(#non-leaf)
        assert len(list(all_grounded_trees(1))) == 1
        assert len(list(all_grounded_trees(2))) == 2
        assert len(list(all_grounded_trees(3))) == 6

    def test_trees_are_grounded_trees(self):
        for net in all_grounded_trees(3):
            assert is_grounded_tree(net)
            assert net.all_reachable_from_root()
            assert net.all_connected_to_terminal()

    def test_wirings_satisfy_model(self):
        nets = list(all_internal_wirings(2))
        assert len(nets) == 24
        for net in nets:
            assert net.in_degree(net.root) == 0
            assert net.out_degree(net.terminal) == 0
            assert net.all_reachable_from_root()
        # Both connected and disconnected cases occur — what the iff needs.
        assert any(net.all_connected_to_terminal() for net in nets)
        assert any(not net.all_connected_to_terminal() for net in nets)

    def test_wirings_limit(self):
        assert len(list(all_internal_wirings(2, limit=5))) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            list(all_grounded_trees(0))
        with pytest.raises(ValueError):
            list(all_internal_wirings(0))


class TestExploration:
    def test_single_path_single_schedule(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, TreeBroadcastProtocol)
        assert result.always_terminates
        assert result.executions == 1  # no concurrency, no branching

    def test_branching_counts_multiple_executions(self):
        # Two parallel chains → interleavings exist.
        net = DirectedNetwork(
            6, [(0, 2), (2, 3), (2, 4), (3, 1), (4, 1)], root=0, terminal=1
        )
        result = explore_all_schedules(net, TreeBroadcastProtocol)
        assert result.always_terminates
        assert result.executions >= 1
        assert result.steps > net.num_edges  # explored more than one branch

    def test_cycle_always_terminates(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, GeneralBroadcastProtocol)
        assert result.always_terminates

    def test_dead_end_never_terminates_any_schedule(self):
        net = DirectedNetwork(
            5, [(0, 2), (2, 3), (2, 1)], root=0, terminal=1, validate=False
        )
        result = explore_all_schedules(net, GeneralBroadcastProtocol)
        assert result.never_terminates

    def test_labeling_all_schedules(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, LabelAssignmentProtocol)
        assert result.always_terminates

    def test_truncation_reported(self):
        net = DirectedNetwork(
            4, [(0, 2), (2, 3), (2, 3), (3, 1), (3, 1)], root=0, terminal=1
        )
        result = explore_all_schedules(net, GeneralBroadcastProtocol, max_steps_total=3)
        assert result.truncated

    def test_truncated_walks_are_inconclusive(self):
        # Regression: a budget-truncated walk has not seen every schedule,
        # so neither ∀-verdict may be claimed — even when every *visited*
        # leaf terminated (this topology always terminates when drained).
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        full = explore_all_schedules(net, GeneralBroadcastProtocol)
        assert not full.truncated and full.always_terminates
        cut = explore_all_schedules(net, GeneralBroadcastProtocol, max_steps_total=3)
        assert cut.truncated
        assert not cut.always_terminates
        assert not cut.never_terminates

    def test_compiled_network_is_reused(self):
        from repro.network.fastpath import CompiledNetwork

        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        compiled = CompiledNetwork(net)
        fresh = explore_all_schedules(net, GeneralBroadcastProtocol)
        reused = explore_all_schedules(
            net, GeneralBroadcastProtocol, compiled=compiled
        )
        assert (fresh.outcomes, fresh.executions, fresh.steps) == (
            reused.outcomes,
            reused.executions,
            reused.steps,
        )

    def test_compiled_for_other_network_is_rejected(self):
        # A compiled= for a *different* topology must be ignored, not
        # silently explored — the walk would be over the wrong graph.
        from repro.network.fastpath import CompiledNetwork

        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        other = DirectedNetwork(3, [(0, 2), (2, 1)], root=0, terminal=1)
        result = explore_all_schedules(
            net, GeneralBroadcastProtocol, compiled=CompiledNetwork(other)
        )
        assert result.always_terminates
        assert result.steps > 2  # explored net's tree, not other's

    def test_invariant_hook(self):
        from repro.core.intervals import UNIT_UNION

        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)

        def coverage_bounded(states):
            for state in states.values():
                if not UNIT_UNION.contains_union(state.covered()):
                    return False
            return True

        result = explore_all_schedules(
            net, GeneralBroadcastProtocol, invariant=coverage_bounded
        )
        assert result.always_terminates

    def test_invariant_violation_raises(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        with pytest.raises(AssertionError):
            explore_all_schedules(
                net, TreeBroadcastProtocol, invariant=lambda states: False
            )


class TestModeEquivalence:
    """Kernel-mode and object-mode walks report identical counts.

    The kernel walk (flat snapshot/restore) and the object walk
    (clone_state branching) must explore the same schedule tree with the
    same confluence collapsing — otherwise E14's numbers would depend on
    an implementation detail.
    """

    PROTOCOLS_UNDER_TEST = [
        TreeBroadcastProtocol,
        GeneralBroadcastProtocol,
        LabelAssignmentProtocol,
    ]

    def _assert_modes_agree(self, net, factory, max_steps=400_000):
        obj = explore_all_schedules(
            net, factory, max_steps_total=max_steps, use_kernel=False
        )
        ker = explore_all_schedules(
            net, factory, max_steps_total=max_steps, use_kernel=True
        )
        assert (obj.outcomes, obj.executions, obj.steps, obj.truncated) == (
            ker.outcomes,
            ker.executions,
            ker.steps,
            ker.truncated,
        ), net.to_dot()

    def test_modes_agree_on_grounded_trees(self):
        for net in all_grounded_trees(3):
            self._assert_modes_agree(net, TreeBroadcastProtocol)

    def test_modes_agree_on_wirings_for_interval_protocols(self):
        for net in all_internal_wirings(2):
            if net.num_edges > 5:
                continue
            self._assert_modes_agree(net, GeneralBroadcastProtocol)
            self._assert_modes_agree(net, LabelAssignmentProtocol)

    def test_modes_agree_under_truncation(self):
        net = DirectedNetwork(
            4, [(0, 2), (2, 3), (2, 3), (3, 1), (3, 1)], root=0, terminal=1
        )
        self._assert_modes_agree(net, GeneralBroadcastProtocol, max_steps=3)

    def test_kernel_mode_is_the_default_without_invariant(self):
        # use_kernel=True must not raise for a kernel-capable protocol —
        # i.e. the default path really engages the kernel.
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, GeneralBroadcastProtocol, use_kernel=True)
        assert result.always_terminates

    def test_invariant_forces_object_mode(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        with pytest.raises(ValueError):
            explore_all_schedules(
                net,
                GeneralBroadcastProtocol,
                invariant=lambda states: True,
                use_kernel=True,
            )

    def test_kernelless_protocol_falls_back_to_object_mode(self):
        class NoKernel(TreeBroadcastProtocol):
            name = "no-kernel-tree"

        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        result = explore_all_schedules(net, NoKernel)
        assert result.always_terminates
        with pytest.raises(ValueError):
            explore_all_schedules(net, NoKernel, use_kernel=True)


class TestTranspositionTable:
    """The canonical-hash table with its exact-compare fallback."""

    def test_first_visit_is_new(self):
        table = TranspositionTable()
        assert table.visit(("a", 1))
        assert not table.visit(("a", 1))
        assert table.entries == 1
        assert table.hits == 1

    def test_distinct_keys_are_distinct(self):
        table = TranspositionTable()
        assert table.visit(("a", 1))
        assert table.visit(("a", 2))
        assert table.entries == 2

    def test_unhashable_keys_digest_by_structure(self):
        # Kernel snapshots can contain lists (shared flat unions); the
        # digest must freeze them rather than raise.
        table = TranspositionTable()
        assert table.visit(("v", [1, 2], [3]))
        assert not table.visit(("v", [1, 2], [3]))
        assert table.visit(("v", [1, 2], [4]))

    def test_forced_collisions_fall_back_to_exact_compare(self):
        # Injected digest: every key hashes to the same bucket.  The
        # exact-compare fallback must still keep distinct configurations
        # distinct — a collision may cost time, never soundness.
        table = TranspositionTable(digest=lambda key: 0)
        keys = [("cfg", i) for i in range(16)]
        assert all(table.visit(key) for key in keys)
        assert not any(table.visit(key) for key in keys)
        assert table.entries == 16
        assert table.collisions > 0

    def test_rank_reopens_a_visited_configuration(self):
        # Branch-and-bound maximization: reaching a known configuration
        # at a strictly higher rank must re-open it (the deeper prefix can
        # extend to a longer execution); equal or lower rank must not.
        table = TranspositionTable()
        assert table.visit(("cfg",), rank=3)
        assert not table.visit(("cfg",), rank=3)
        assert not table.visit(("cfg",), rank=2)
        assert table.visit(("cfg",), rank=5)
        assert table.reopened == 1
        assert table.entries == 1

    def test_stats_shape(self):
        table = TranspositionTable()
        table.visit(("x",))
        stats = table.stats()
        assert set(stats) == {"entries", "hits", "collisions", "reopened"}

    def test_collision_injection_keeps_exploration_exact(self):
        # End to end: the explorer's counts must be identical under a
        # pathological all-colliding digest.
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        honest = explore_all_schedules(net, GeneralBroadcastProtocol)
        colliding = explore_all_schedules(
            net, GeneralBroadcastProtocol, digest=lambda key: 0
        )
        assert (honest.outcomes, honest.executions, honest.steps) == (
            colliding.outcomes,
            colliding.executions,
            colliding.steps,
        )
        assert colliding.table["collisions"] > 0


class TestCloneState:
    """The object-mode branching hooks."""

    def test_general_state_clone_is_independent(self):
        from repro.core.intervals import UNIT_UNION
        from repro.core.model import VertexView

        protocol = GeneralBroadcastProtocol()
        state = protocol.create_state(VertexView(in_degree=1, out_degree=2))
        clone = protocol.clone_state(state)
        assert clone is not state
        assert clone.alphas is not state.alphas
        assert repr(clone) == repr(state)
        clone.alphas[-1] = UNIT_UNION
        assert state.alphas[-1] != UNIT_UNION

    def test_frozen_states_clone_to_themselves(self):
        from repro.core.model import VertexView

        protocol = TreeBroadcastProtocol()
        state = protocol.create_state(VertexView(in_degree=1, out_degree=2))
        assert protocol.clone_state(state) is state

    def test_frozen_messages_clone_to_themselves(self):
        from repro.core.messages import TreeToken

        token = TreeToken(exponent=2)
        assert TreeBroadcastProtocol().clone_message(token) is token

    def test_default_clone_message_protects_mutable_messages(self):
        # Branch independence: a protocol that mutates received messages
        # must not leak the mutation into sibling schedule branches — the
        # default clone_message deepcopy is what guarantees it.
        from repro.core.model import FunctionalProtocol

        def mutate_state(state, message, in_port):
            message.append(in_port)
            return len(message)

        protocol_factory = lambda: FunctionalProtocol(  # noqa: E731
            initial_state=0,
            initial_message=[],
            state_fn=mutate_state,
            message_fn=lambda s, m, i, j: list(m),
            stopping_predicate=lambda s: False,
            message_bits_fn=lambda m: len(m) + 1,
        )
        original = [1, 2]
        clone = protocol_factory().clone_message(original)
        assert clone == original and clone is not original
        net = DirectedNetwork(
            4, [(0, 2), (2, 3), (2, 3), (3, 1)], root=0, terminal=1
        )
        result = explore_all_schedules(
            net, protocol_factory, max_steps_total=5_000
        )
        # With shared (non-copied) payloads the exploration would count
        # configurations contaminated by sibling branches; the deepcopy
        # default keeps the walk sound for arbitrary protocols.
        assert result.never_terminates
        assert not result.truncated

    def test_default_clone_state_deepcopies(self):
        from repro.core.model import FunctionalProtocol

        protocol = FunctionalProtocol(
            initial_state={"seen": []},
            initial_message="go",
            state_fn=lambda s, m, i: s,
            message_fn=lambda s, m, i, j: None,
            stopping_predicate=lambda s: False,
            message_bits_fn=lambda m: 1,
        )
        state = {"seen": [1, 2]}
        clone = protocol.clone_state(state)
        assert clone == state and clone is not state
        assert clone["seen"] is not state["seen"]


class TestIffExhaustive:
    """The headline: the iff theorem, machine-checked on small instances."""

    def test_all_grounded_trees_always_terminate(self):
        for net in all_grounded_trees(3):
            result = explore_all_schedules(net, TreeBroadcastProtocol)
            assert not result.truncated
            assert result.always_terminates

    def test_iff_on_sparse_wirings(self):
        for net in all_internal_wirings(2):
            if net.num_edges > 5:
                continue  # densest cases covered by sampled schedules
            result = explore_all_schedules(
                net, GeneralBroadcastProtocol, max_steps_total=400_000
            )
            assert not result.truncated
            if net.all_connected_to_terminal():
                assert result.always_terminates, net.to_dot()
            else:
                assert result.never_terminates, net.to_dot()
