"""Tests for the Theorem 5.2 pruning harness."""

import pytest

from repro.core.labeling import labels_pairwise_disjoint
from repro.lowerbounds.labels import (
    label_growth_on_pruned,
    leaf_labels,
    pruning_preserves_label,
)


class TestLeafLabels:
    def test_all_leaves_labeled_and_distinct(self):
        labels = leaf_labels(2, 4)
        assert len(labels) == 16
        assert labels_pairwise_disjoint(list(labels.values()))

    def test_ternary_tree(self):
        labels = leaf_labels(3, 3)
        assert len(labels) == 27
        assert labels_pairwise_disjoint(list(labels.values()))


class TestPruning:
    @pytest.mark.parametrize("degree,height", [(2, 3), (2, 5), (3, 3)])
    def test_default_path_preserved(self, degree, height):
        assert pruning_preserves_label(degree, height)

    def test_nontrivial_path_choices(self):
        assert pruning_preserves_label(2, 4, [1, 0, 1, 1])
        assert pruning_preserves_label(3, 3, [2, 1, 0])

    def test_growth_rows(self):
        rows = label_growth_on_pruned([(2, 4), (2, 8), (2, 16)])
        bits = [row.leaf_label_bits for row in rows]
        assert bits[0] < bits[1] < bits[2]
        # Pruned graphs have h+3 vertices.
        assert [row.num_vertices_pruned for row in rows] == [7, 11, 19]

    def test_growth_linear_in_height(self):
        rows = label_growth_on_pruned([(2, 8), (2, 16), (2, 32)])
        b = {row.height: row.leaf_label_bits for row in rows}
        # Roughly constant increment per doubling-of-height step beyond
        # encoding overhead: linear, not logarithmic.
        assert (b[32] - b[16]) >= 0.7 * (b[16] - b[8])

    def test_growth_with_degree(self):
        rows = label_growth_on_pruned([(2, 8), (4, 8), (8, 8)])
        b = {row.degree: row.leaf_label_bits for row in rows}
        assert b[2] < b[4] < b[8]
