"""Tests for the Theorem 3.2 alphabet harness."""

import math

import pytest

from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.constructions import caterpillar_gn
from repro.graphs.generators import random_dag, random_grounded_tree
from repro.lowerbounds.alphabet import (
    alphabet_on_gn,
    huffman_floor_bits,
    verify_cut_incomparability,
    verify_lemma_3_7,
    verify_single_message_per_edge,
)


class TestLemma33:
    @pytest.mark.parametrize("seed", range(3))
    def test_single_message_per_edge(self, seed):
        net = random_grounded_tree(30, seed=seed)
        assert verify_single_message_per_edge(net, TreeBroadcastProtocol())

    def test_rejects_non_trees(self):
        with pytest.raises(ValueError):
            verify_single_message_per_edge(random_dag(10, seed=0), TreeBroadcastProtocol())


class TestLemma37:
    @pytest.mark.parametrize("seed", range(3))
    def test_holds_on_random_trees(self, seed):
        net = random_grounded_tree(20, seed=seed)
        assert verify_lemma_3_7(net, TreeBroadcastProtocol()) > 0

    def test_holds_on_caterpillar(self):
        checked = verify_lemma_3_7(caterpillar_gn(8), TreeBroadcastProtocol())
        assert checked > 0


class TestTheorem36:
    @pytest.mark.parametrize("seed", range(2))
    def test_cut_multisets_incomparable(self, seed):
        net = random_grounded_tree(10, seed=seed)
        assert verify_cut_incomparability(net, TreeBroadcastProtocol(), max_cuts=80) > 0

    def test_on_caterpillar(self):
        assert verify_cut_incomparability(caterpillar_gn(5), TreeBroadcastProtocol()) > 0


class TestHuffmanFloor:
    def test_single_symbol(self):
        assert huffman_floor_bits({"a": 10}) == 10  # one bit per use

    def test_uniform_two_symbols(self):
        assert huffman_floor_bits({"a": 4, "b": 4}) == 8

    def test_empty(self):
        assert huffman_floor_bits({}) == 0

    def test_matches_entropy_for_uniform_power_of_two(self):
        counts = {i: 3 for i in range(8)}  # 8 symbols → 3 bits each
        assert huffman_floor_bits(counts) == 24 * 3

    def test_skewed_cheaper_than_uniform_code(self):
        counts = {"common": 100, "rare1": 1, "rare2": 1, "rare3": 1}
        uniform_cost = sum(counts.values()) * 2
        assert huffman_floor_bits(counts) < uniform_cost


class TestGnFamily:
    def test_alphabet_at_least_n(self):
        for row in alphabet_on_gn(TreeBroadcastProtocol, [4, 8, 16, 32]):
            assert row.distinct_symbols >= row.n

    def test_floor_grows_like_e_log_e(self):
        rows = alphabet_on_gn(TreeBroadcastProtocol, [16, 64, 256])
        ratios = [row.floor_per_edge_log_e for row in rows]
        # The normalised floor approaches a constant from below.
        assert ratios[0] < ratios[1] < ratios[2] < 1.0
        assert ratios[0] > 0.5

    def test_measured_bits_dominate_floor(self):
        for row in alphabet_on_gn(TreeBroadcastProtocol, [8, 32]):
            assert row.measured_bits >= row.floor_bits
