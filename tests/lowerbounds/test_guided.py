"""Tests for the guided (best-first / branch-and-bound) schedule search.

The load-bearing suite is the registry-driven differential one: on every
enumerated topology small enough to exhaust, the guided search must
reproduce the exhaustive DFS answers exactly — same outcome set, and an
incumbent at least as deep as any leaf the DFS saw (equal, since both
drain the tree).  Everything else (objectives, extraction, collision
injection, parallel sharding) builds on that agreement.
"""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.enumerate_graphs import all_grounded_trees, all_internal_wirings
from repro.lowerbounds.guided import (
    OBJECTIVES,
    SearchObjective,
    extract_schedule,
    get_objective,
    search_schedules,
    search_spec_schedules,
)
from repro.lowerbounds.schedules import explore_all_schedules
from repro.network.graph import DirectedNetwork

#: Every snapshot-capable protocol the explorer supports, with the graph
#: families it is defined on.
SNAPSHOT_PROTOCOLS = [
    (TreeBroadcastProtocol, "trees"),
    (GeneralBroadcastProtocol, "all"),
    (LabelAssignmentProtocol, "all"),
]


def _small_topologies():
    """Every enumerated topology with <= 4 internal vertices that stays
    exhaustible (edge caps keep the densest wirings out, as in E14)."""
    cases = []
    for k in (1, 2, 3, 4):
        for net in all_grounded_trees(k):
            cases.append((net, "trees"))
    for net in all_internal_wirings(2):
        if net.num_edges <= 5:
            cases.append((net, "all"))
    return cases


class TestDifferential:
    """Guided search vs. exhaustive DFS on every enumerated topology."""

    def test_guided_agrees_with_exhaustive_everywhere(self):
        checked = 0
        for net, family in _small_topologies():
            for factory, habitat in SNAPSHOT_PROTOCOLS:
                if habitat == "trees" and family != "trees":
                    continue
                exhaustive = explore_all_schedules(
                    net, factory, max_steps_total=400_000
                )
                assert not exhaustive.truncated, net.to_dot()
                guided = search_schedules(
                    net, factory, objective="max-steps", max_nodes=400_000
                )
                assert not guided.truncated, net.to_dot()
                # Same reachable outcome set...
                assert guided.outcomes == exhaustive.outcomes, net.to_dot()
                # ...and the incumbent is >= any exhaustive leaf (equal,
                # since both drained the tree: it IS the global maximum).
                assert guided.best_depth >= exhaustive.max_depth, net.to_dot()
                assert guided.best_depth == exhaustive.max_depth, net.to_dot()
                checked += 1
        # 1+2+6+24 trees × 2 protocols (trees also run general/labeling)
        # plus the sparse wirings × 2 — make sure the loop really ran.
        assert checked > 60

    def test_kernel_and_object_modes_agree(self):
        for net, family in _small_topologies():
            if family != "all":
                continue
            for factory in (GeneralBroadcastProtocol, LabelAssignmentProtocol):
                obj = search_schedules(
                    net, factory, objective="max-steps", use_kernel=False
                )
                ker = search_schedules(
                    net, factory, objective="max-steps", use_kernel=True
                )
                assert (obj.outcomes, obj.best_value, obj.best_depth, obj.nodes) == (
                    ker.outcomes,
                    ker.best_value,
                    ker.best_depth,
                    ker.nodes,
                ), net.to_dot()
                assert obj.best_path == ker.best_path, net.to_dot()
                assert obj.mode == "object" and ker.mode == "kernel"

    def test_collision_injection_keeps_search_exact(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        honest = search_schedules(net, GeneralBroadcastProtocol)
        colliding = search_schedules(
            net, GeneralBroadcastProtocol, digest=lambda key: 0
        )
        assert (honest.outcomes, honest.best_depth, honest.nodes) == (
            colliding.outcomes,
            colliding.best_depth,
            colliding.nodes,
        )
        assert colliding.table["collisions"] > 0


class TestObjectives:
    def test_registry_contents(self):
        for name in ("max-steps", "max-bits", "reach-termination", "reach-quiescence"):
            assert name in OBJECTIVES
            assert get_objective(name).name == name
        with pytest.raises(KeyError):
            get_objective("no-such-objective")

    def test_max_bits_maximizes_bits(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        by_steps = search_schedules(net, GeneralBroadcastProtocol, objective="max-steps")
        by_bits = search_schedules(net, GeneralBroadcastProtocol, objective="max-bits")
        assert by_bits.best_value == by_bits.best_bits
        assert by_bits.best_bits >= by_steps.best_bits

    def test_reach_termination_finds_a_witness_and_stops_early(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        full = search_schedules(net, GeneralBroadcastProtocol, objective="max-steps")
        witness = search_schedules(
            net, GeneralBroadcastProtocol, objective="reach-termination"
        )
        assert witness.best_outcome == "terminated"
        # Satisfaction short-circuits: no need to drain the tree.
        assert witness.nodes <= full.nodes

    def test_reach_quiescence_on_a_dead_end(self):
        net = DirectedNetwork(
            5, [(0, 2), (2, 3), (2, 1)], root=0, terminal=1, validate=False
        )
        result = search_schedules(
            net, GeneralBroadcastProtocol, objective="reach-quiescence"
        )
        assert result.best_outcome == "quiescent"

    def test_custom_objective_registration(self):
        from repro.lowerbounds.guided import register_objective

        custom = SearchObjective(
            name="test-min-steps",
            description="shortest terminating execution (test only)",
            leaf_value=lambda depth, bits, outcome: (
                -depth if outcome == "terminated" else float("-inf")
            ),
            priority=lambda depth, bits, pending: -depth,
            rank=lambda depth, bits: 0,
        )
        register_objective(custom)
        try:
            net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
            result = search_schedules(net, TreeBroadcastProtocol, objective=custom.name)
            assert result.best_outcome == "terminated"
        finally:
            del OBJECTIVES[custom.name]


class TestTruncationAndIncumbents:
    def test_truncated_search_still_carries_an_incumbent(self):
        # The greedy dive guarantees a complete execution early even when
        # the budget is far too small to drain the space.
        net = DirectedNetwork(
            4, [(0, 2), (2, 3), (2, 3), (3, 1), (3, 1)], root=0, terminal=1
        )
        result = search_schedules(
            net, GeneralBroadcastProtocol, objective="max-steps", max_nodes=40
        )
        assert result.truncated
        assert result.best_path is not None
        assert result.best_depth > 0

    def test_incumbent_bound_prunes(self):
        # Passing the known optimum as the incumbent must not change it.
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        base = search_schedules(net, GeneralBroadcastProtocol, objective="max-steps")
        bounded = search_schedules(
            net,
            GeneralBroadcastProtocol,
            objective="max-steps",
            incumbent=base.best_value,
        )
        assert bounded.best_value >= base.best_value


class TestExtraction:
    def test_extracted_schedule_matches_search_leaf(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = search_schedules(net, GeneralBroadcastProtocol, objective="max-steps")
        extracted = extract_schedule(
            net, GeneralBroadcastProtocol, result.best_path
        )
        assert extracted.steps == result.best_depth
        assert extracted.total_bits == result.best_bits
        assert extracted.outcome == result.best_outcome
        assert len(extracted.deliveries) == extracted.steps

    def test_extraction_rejects_bad_paths(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        with pytest.raises(ValueError):
            extract_schedule(net, TreeBroadcastProtocol, (99,))
        result = search_schedules(net, TreeBroadcastProtocol)
        with pytest.raises(ValueError):
            # A strict prefix of a leaf path does not end at a leaf.
            extract_schedule(net, TreeBroadcastProtocol, result.best_path[:-1])


class TestParallelFrontier:
    def test_parallel_agrees_with_serial_on_exhaustible_space(self):
        from repro.api.spec import RunSpec, ensure_registered

        ensure_registered()
        spec = RunSpec(
            graph="random-dag",
            graph_params={"num_internal": 3, "seed": 0},
            protocol="general-broadcast",
            seed=0,
        )
        serial = search_spec_schedules(spec, objective="max-steps", max_nodes=50_000)
        parallel = search_spec_schedules(
            spec, objective="max-steps", max_nodes=50_000, max_workers=2
        )
        assert not serial.truncated
        assert parallel.outcomes == serial.outcomes
        assert parallel.best_depth == serial.best_depth
        assert parallel.best_value == serial.best_value

    def test_parallel_incumbent_is_replayable(self):
        from repro.api.spec import RunSpec, ensure_registered

        ensure_registered()
        spec = RunSpec(
            graph="random-dag",
            graph_params={"num_internal": 3, "seed": 0},
            protocol="general-broadcast",
            seed=0,
        )
        result = search_spec_schedules(
            spec, objective="max-steps", max_nodes=50_000, max_workers=2
        )
        extracted = extract_schedule(
            spec.build_graph(), spec.build_protocol, result.best_path
        )
        assert extracted.steps == result.best_depth
