"""Tests for the Theorem 3.8 skeleton-tree harness."""

from fractions import Fraction

import pytest

from repro.baselines.naive_tree import NaiveTreeBroadcastProtocol
from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.core.messages import ScalarToken
from repro.core.dyadic import Dyadic
from repro.lowerbounds.commodity import (
    bandwidth_growth,
    collect_subset_sums,
    hair_quantities,
    quantity_of,
    verify_inequality_chain,
)


class TestQuantityExtraction:
    def test_scalar_token(self):
        assert quantity_of(ScalarToken(Dyadic(3, 2))) == Fraction(3, 4)

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            quantity_of("not a token")

    def test_hair_quantities_positive_and_ordered(self):
        q = hair_quantities(4, DagBroadcastProtocol)
        assert len(q) == 7
        assert all(value > 0 for value in q.values())
        assert verify_inequality_chain(q, 4)


class TestSubsetSums:
    def test_all_distinct_exhaustive(self):
        sums = collect_subset_sums(4, DagBroadcastProtocol)
        assert len(sums) == 2 ** 4
        assert len(set(sums.values())) == 2 ** 4

    def test_empty_subset_is_zero(self):
        sums = collect_subset_sums(2, DagBroadcastProtocol)
        assert sums[frozenset()] == 0

    def test_sampled_mode(self):
        sums = collect_subset_sums(8, DagBroadcastProtocol, max_subsets=20)
        assert len(sums) == 20
        assert len(set(sums.values())) == 20

    def test_sums_are_subset_sums_of_hairs(self):
        quantities = hair_quantities(3, DagBroadcastProtocol)
        sums = collect_subset_sums(3, DagBroadcastProtocol)
        for subset, total in sums.items():
            expected = sum((quantities[i] for i in subset), Fraction(0))
            assert total == expected

    def test_other_waiting_commodity_protocols_supported(self):
        # Theorem 3.8 quantifies over all commodity-preserving protocols
        # that wait on all in-edges (the Appendix B assumption).  An even
        # x/d split with exact rationals is such a protocol.
        from typing import List, Tuple

        from repro.baselines.naive_tree import NaiveTreeState, RationalToken
        from repro.core.model import AnonymousProtocol, VertexView

        class WaitingNaive(AnonymousProtocol):
            name = "waiting-naive"

            def create_state(self, view):
                return {"heard": 0, "acc": Fraction(0)}

            def initial_emissions(self, view):
                share = Fraction(1, view.out_degree)
                return [(p, RationalToken(share)) for p in range(view.out_degree)]

            def on_receive(self, state, view, in_port, message):
                state["heard"] += 1
                state["acc"] += message.value
                emissions = []
                if state["heard"] == view.in_degree and view.out_degree:
                    share = state["acc"] / view.out_degree
                    emissions = [
                        (p, RationalToken(share)) for p in range(view.out_degree)
                    ]
                return state, emissions

            def is_terminated(self, state):
                return state["acc"] == 1

            def message_bits(self, message):
                return message.structure_bits()

        sums = collect_subset_sums(3, WaitingNaive)
        assert len(set(sums.values())) == 2 ** 3

    def test_eager_protocols_rejected(self):
        # The harness encodes the Appendix B waiting assumption: a protocol
        # that forwards per-message (several messages through w) trips the
        # single-aggregated-message check instead of silently mismeasuring.
        with pytest.raises(AssertionError):
            collect_subset_sums(3, NaiveTreeBroadcastProtocol)


class TestBandwidthGrowth:
    def test_linear_growth(self):
        rows = bandwidth_growth([2, 4, 8, 16], DagBroadcastProtocol)
        widths = {row.n: row.max_message_bits for row in rows}
        # Doubling n must grow width markedly (linear, not logarithmic).
        assert widths[16] >= widths[8] + 8
        assert widths[8] >= widths[4] + 8

    def test_loglog_slope_near_one(self):
        from repro.analysis.scaling import loglog_slope

        rows = bandwidth_growth([4, 8, 16, 32], DagBroadcastProtocol)
        slope = loglog_slope([r.n for r in rows], [r.max_message_bits for r in rows])
        assert 0.6 <= slope <= 1.2

    def test_possible_sums_exponential(self):
        rows = bandwidth_growth([4, 8], DagBroadcastProtocol)
        assert rows[0].distinct_possible_sums == 2 ** 4
        assert rows[1].distinct_possible_sums == 2 ** 8
