"""ScheduleCertificate round-trips, independent replay, tamper detection."""

import json

import pytest

from repro.api.spec import RunSpec, ensure_registered
from repro.lowerbounds.certificates import (
    CertificateError,
    ScheduleCertificate,
    load_certificate,
    search_and_certify,
    store_certificate,
    verify_certificate,
)


@pytest.fixture(scope="module")
def certified():
    ensure_registered()
    spec = RunSpec(
        graph="random-dag",
        graph_params={"num_internal": 3, "seed": 0},
        protocol="general-broadcast",
        seed=0,
    )
    result, certificate = search_and_certify(
        spec, objective="max-steps", max_nodes=50_000
    )
    assert certificate is not None
    return result, certificate


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, certified):
        _, cert = certified
        again = ScheduleCertificate.from_json(cert.to_json())
        assert again.to_dict() == cert.to_dict()
        assert again.cert_id == cert.cert_id

    def test_digest_is_stable_and_excludes_itself(self, certified):
        _, cert = certified
        payload = cert.to_dict()
        assert payload["digest"] == cert.digest()
        # The digest covers everything *except* the digest field.
        loaded = ScheduleCertificate.from_dict(payload)
        assert loaded.digest() == payload["digest"]

    def test_malformed_json_raises_certificate_error(self):
        with pytest.raises(CertificateError):
            ScheduleCertificate.from_json("not json at all {")
        with pytest.raises(CertificateError):
            ScheduleCertificate.from_json("[1, 2, 3]")
        with pytest.raises(CertificateError):
            ScheduleCertificate.from_dict({"workload": {}})

    def test_store_and_load(self, certified, tmp_path):
        _, cert = certified
        path = store_certificate(str(tmp_path), cert)
        assert path.endswith(f"{cert.cert_id}.json")
        assert "schedules" in path
        loaded = load_certificate(path)
        assert loaded.to_dict() == cert.to_dict()
        # Content-addressed: storing again re-writes the same file.
        assert store_certificate(str(tmp_path), cert) == path

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CertificateError):
            load_certificate(str(tmp_path / "nope.json"))


class TestVerification:
    def test_fresh_certificate_verifies(self, certified):
        result, cert = certified
        report = verify_certificate(cert)
        assert report.ok, report.failures
        assert report.replayed_steps == cert.steps == result.best_depth
        assert report.replayed_bits == cert.total_bits
        assert report.replayed_outcome == cert.outcome
        assert "CERTIFICATE OK" in report.summary()

    @pytest.mark.parametrize(
        "tamper",
        [
            lambda d: d.__setitem__("steps", d["steps"] + 1),
            lambda d: d.__setitem__("total_bits", d["total_bits"] + 1),
            lambda d: d.__setitem__("outcome", "quiescent"),
            lambda d: d["deliveries"].pop(),
            lambda d: d["deliveries"].__setitem__(
                0, [d["deliveries"][0][0], "Bogus()"]
            ),
            lambda d: d["deliveries"].reverse(),
        ],
        ids=["steps", "bits", "outcome", "drop", "payload", "reorder"],
    )
    def test_tampering_fails_verification(self, certified, tamper):
        _, cert = certified
        payload = cert.to_dict()
        tamper(payload)
        report = verify_certificate(ScheduleCertificate.from_dict(payload))
        assert not report.ok
        # Every tamper also breaks the digest — but ok must be False even
        # for the replay/claim reasons alone, which the failures list shows.
        assert any("digest mismatch" in f for f in report.failures)
        assert "CERTIFICATE FAILED" in report.summary()

    def test_recomputed_digest_does_not_whitewash_tampering(self, certified):
        # An attacker who edits a claim AND fixes the digest must still
        # fail: the replay itself contradicts the claim.
        _, cert = certified
        payload = cert.to_dict()
        payload["steps"] += 1
        payload.pop("digest")
        forged = ScheduleCertificate.from_dict(payload)
        assert forged.stored_digest is None  # self-consistent again
        report = verify_certificate(forged)
        assert not report.ok
        assert any("steps" in f for f in report.failures)

    def test_unknown_workload_is_a_verification_failure(self, certified):
        _, cert = certified
        payload = cert.to_dict()
        payload["workload"]["graph"] = "no-such-graph"
        report = verify_certificate(ScheduleCertificate.from_dict(payload))
        assert not report.ok
        assert any("rebuild" in f for f in report.failures)


class TestCampaignE19:
    def test_quick_campaign_certificates_all_verify(self, tmp_path):
        """Satellite: every certificate e19 --quick emits round-trips
        through JSON and replays to its claimed step count and outcome."""
        from repro.api.campaign import CampaignRunner
        from repro.store import ResultStore

        ensure_registered()
        store = ResultStore(str(tmp_path / "store"))
        runner = CampaignRunner(scale="quick", store=store, parallel=False)
        result = runner.run("e19")
        assert result.rows
        for row in result.rows:
            assert row["certificate"] is not None
            path = row["certificate_path"]
            cert = load_certificate(path)
            assert cert.cert_id == row["certificate"]
            assert cert.to_dict() == json.loads(cert.to_json())
            report = verify_certificate(cert)
            assert report.ok, report.failures
            assert report.replayed_steps == row["worst_steps"] == cert.steps
            assert report.replayed_outcome == row["outcome"]
