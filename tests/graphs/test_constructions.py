"""Tests for the paper's witness constructions (Figures 4, 5, 6)."""

import pytest

from repro.graphs.constructions import (
    caterpillar_gn,
    full_tree_path_vertices,
    full_tree_with_terminal,
    pruned_tree,
    skeleton_tree,
    skeleton_tree_hairs,
    truncate_at_cut,
)
from repro.graphs.properties import is_dag, is_grounded_tree, is_linear_cut


class TestCaterpillarGn:
    def test_matches_paper_counts(self):
        # "Gₙ has n + 2 vertices and 2n edges."
        for n in (1, 5, 20):
            net = caterpillar_gn(n)
            assert net.num_vertices == n + 2
            assert net.num_edges == 2 * n

    def test_is_grounded_tree(self):
        assert is_grounded_tree(caterpillar_gn(10))

    def test_spine_out_degrees(self):
        net = caterpillar_gn(5)
        # v_1 .. v_4 have out-degree 2, v_5 only the edge to t.
        for i in range(1, 5):
            assert net.out_degree(1 + i) == 2
        assert net.out_degree(6) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            caterpillar_gn(0)


class TestSkeletonTree:
    def test_counts(self):
        net = skeleton_tree(3)
        # s, t, w + 2n spine + 2n-1 hairs = 3 + 6 + 5.
        assert net.num_vertices == 14
        assert is_dag(net)

    def test_hairs(self):
        assert skeleton_tree_hairs(4) == [0, 2, 4, 6]

    def test_subset_wiring(self):
        n = 3
        chosen = [0, 4]
        net = skeleton_tree(n, subset=chosen)
        w = 2
        u = lambda i: 3 + 2 * n + i
        assert net.in_degree(w) == len(chosen)
        for i in range(2 * n - 1):
            head = net.edge_head(net.out_edge_ids(u(i))[0])
            assert head == (w if i in chosen else net.terminal)

    def test_spine_port_order(self):
        # Port 0 = spine continuation (left), port 1 = hair (right).
        n = 3
        net = skeleton_tree(n)
        v = lambda i: 3 + i
        for i in range(2 * n - 2):
            outs = net.out_edge_ids(v(i))
            assert net.edge_head(outs[0]) == v(i + 1)

    def test_rejects_odd_subset_member(self):
        with pytest.raises(ValueError):
            skeleton_tree(3, subset=[1])

    def test_rejects_out_of_range_subset(self):
        with pytest.raises(ValueError):
            skeleton_tree(3, subset=[10])


class TestFullAndPrunedTrees:
    def test_full_tree_counts(self):
        net = full_tree_with_terminal(2, 3)
        # s + tree root + 2 + 4 + 8 internal + t = 17
        assert net.num_vertices == 17
        assert is_grounded_tree(net)

    def test_leaves_wired_to_terminal(self):
        net = full_tree_with_terminal(3, 2)
        leaves = [
            v
            for v in net.internal_vertices()
            if net.out_degree(v) == 1
            and net.edge_head(net.out_edge_ids(v)[0]) == net.terminal
        ]
        assert len(leaves) == 9

    def test_path_vertices(self):
        path = full_tree_path_vertices(2, 3, [0, 1, 0])
        assert len(path) == 4
        assert path[0] == 2  # tree root
        net = full_tree_with_terminal(2, 3)
        # Consecutive path vertices are connected by an edge at the chosen port.
        for k, (a, b) in enumerate(zip(path, path[1:])):
            outs = net.out_edge_ids(a)
            assert net.edge_head(outs[[0, 1, 0][k]]) == b

    def test_pruned_counts_match_paper(self):
        # "a new graph with a total of h + 3 vertices and maximal out-degree d"
        net = pruned_tree(4, 6)
        assert net.num_vertices == 6 + 3
        assert net.max_out_degree() == 4
        assert is_grounded_tree(net)

    def test_pruned_port_positions(self):
        choices = [2, 0, 1]
        net = pruned_tree(3, 3, choices)
        for k in range(3):
            w_k = 2 + k
            outs = net.out_edge_ids(w_k)
            assert len(outs) == 3
            for port in range(3):
                head = net.edge_head(outs[port])
                if port == choices[k]:
                    assert head == 2 + k + 1
                else:
                    assert head == net.terminal

    def test_validation(self):
        with pytest.raises(ValueError):
            pruned_tree(1, 3)
        with pytest.raises(ValueError):
            pruned_tree(2, 3, [0, 0])  # wrong length
        with pytest.raises(ValueError):
            pruned_tree(2, 3, [0, 0, 5])  # out of range


class TestTruncateAtCut:
    def test_snapshot_surgery(self):
        net = caterpillar_gn(5)
        # V1 = {s, v1, v2}: ancestor-closed, a linear cut.
        v1 = {0, 2, 3}
        assert is_linear_cut(net, v1)
        star = truncate_at_cut(net, v1)
        assert star.num_vertices == 4  # s, v1, v2, new t
        assert is_grounded_tree(star)
        # Cut-crossing edges: v1→t, v2→v3, v2→t — all now enter new t.
        assert star.in_degree(star.terminal) == 3

    def test_rejects_bad_v1(self):
        net = caterpillar_gn(3)
        with pytest.raises(ValueError):
            truncate_at_cut(net, {2})  # root missing
        with pytest.raises(ValueError):
            truncate_at_cut(net, {0, 1})  # terminal included
