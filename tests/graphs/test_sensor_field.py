"""Tests for the geometric sensor-field generator and longest-path helper."""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.graphs.generators import geometric_sensor_field, path_network, random_dag
from repro.graphs.properties import longest_path_length
from repro.network.graph import DirectedNetwork
from repro.network.simulator import run_protocol


class TestSensorField:
    @pytest.mark.parametrize("seed", range(4))
    def test_model_assumptions_hold(self, seed):
        net = geometric_sensor_field(30, seed=seed)
        assert net.in_degree(net.root) == 0
        assert net.out_degree(net.root) == 1
        assert net.out_degree(net.terminal) == 0
        assert net.all_reachable_from_root()
        assert net.all_connected_to_terminal()

    def test_deterministic(self):
        a = geometric_sensor_field(20, seed=5)
        b = geometric_sensor_field(20, seed=5)
        assert a.edges == b.edges

    def test_links_are_asymmetric(self):
        # Directedness is the point: some link must lack its reverse.
        net = geometric_sensor_field(30, seed=1)
        edge_set = set(net.edges)
        asymmetric = [
            (a, b)
            for (a, b) in edge_set
            if a not in (net.root,) and b not in (net.terminal,) and (b, a) not in edge_set
        ]
        assert asymmetric

    def test_density_scales_with_range(self):
        sparse = geometric_sensor_field(30, seed=2, base_range=0.15, range_spread=0.05)
        dense = geometric_sensor_field(30, seed=2, base_range=0.5, range_spread=0.2)
        assert dense.num_edges > sparse.num_edges

    def test_broadcast_runs(self):
        net = geometric_sensor_field(15, seed=3, base_range=0.3, range_spread=0.1)
        result = run_protocol(net, GeneralBroadcastProtocol("fw"))
        assert result.terminated

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            geometric_sensor_field(1)


class TestLongestPath:
    def test_path_network(self):
        assert longest_path_length(path_network(5)) == 6

    def test_dag(self):
        net = DirectedNetwork(5, [(0, 2), (2, 3), (2, 4), (3, 4), (4, 1)], root=0, terminal=1)
        assert longest_path_length(net) == 4  # s→2→3→4→t

    def test_random_dag_bounds(self):
        net = random_dag(30, seed=0)
        depth = longest_path_length(net)
        assert 1 <= depth < net.num_vertices

    def test_cyclic_rejected(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        with pytest.raises(ValueError):
            longest_path_length(net)
