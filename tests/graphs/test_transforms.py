"""Tests for the multi-root / multi-terminal model extensions (§2)."""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol, extract_labels, labels_pairwise_disjoint
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.transforms import merge_roots, merge_terminals, relax_root_degree
from repro.network.graph import DirectedNetwork
from repro.network.simulator import Outcome, run_protocol


class TestMergeRoots:
    def test_two_sources(self):
        # Sources 0 and 1 feed a shared middle 2 which reaches sink 3.
        net = merge_roots(4, [(0, 2), (1, 2), (2, 3)], roots=[0, 1], terminal=3)
        assert net.root == 4
        assert net.out_degree(4) == 2
        assert net.in_degree(4) == 0
        assert net.all_reachable_from_root()

    def test_broadcast_runs_with_multi_out_root(self):
        net = merge_roots(4, [(0, 2), (1, 2), (2, 3)], roots=[0, 1], terminal=3)
        result = run_protocol(net, GeneralBroadcastProtocol("m"))
        assert result.terminated
        for v in (0, 1, 2):
            assert result.states[v].got_broadcast

    def test_tree_protocol_splits_root_commodity(self):
        # Two disjoint chains from two sources into one sink.
        net = merge_roots(5, [(0, 2), (2, 4), (1, 3), (3, 4)], roots=[0, 1], terminal=4)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.terminated

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_roots(3, [(0, 2)], roots=[], terminal=2)
        with pytest.raises(ValueError):
            merge_roots(3, [(0, 2)], roots=[2], terminal=2)
        with pytest.raises(ValueError):
            merge_roots(3, [(0, 1), (1, 2)], roots=[1], terminal=2)  # root has in-edge


class TestMergeTerminals:
    def test_two_sinks(self):
        net = merge_terminals(4, [(0, 1), (1, 2), (1, 3)], root=0, terminals=[2, 3])
        assert net.terminal == 4
        assert net.in_degree(4) == 2
        assert net.out_degree(4) == 0
        assert net.all_connected_to_terminal()

    def test_broadcast_certifies_union_of_sinks(self):
        net = merge_terminals(4, [(0, 1), (1, 2), (1, 3)], root=0, terminals=[2, 3])
        result = run_protocol(net, GeneralBroadcastProtocol("m"))
        assert result.terminated

    def test_labeling_on_merged(self):
        net = merge_terminals(5, [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)], root=0, terminals=[4])
        result = run_protocol(net, LabelAssignmentProtocol())
        assert result.terminated
        labels = extract_labels(result.states)
        assert labels_pairwise_disjoint(list(labels.values()))

    def test_unreachable_sink_blocks(self):
        # Sink 3 is unreachable-from-s? No — model requires reachability;
        # instead: a vertex that reaches neither sink blocks termination.
        net = merge_terminals(5, [(0, 1), (1, 2), (1, 4), (1, 3)], root=0, terminals=[2, 3])
        # vertex 4 is a dead end (reaches no sink).
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert result.outcome is Outcome.QUIESCENT

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_terminals(3, [(0, 1)], root=0, terminals=[])
        with pytest.raises(ValueError):
            merge_terminals(3, [(0, 1)], root=0, terminals=[0])
        with pytest.raises(ValueError):
            merge_terminals(3, [(0, 1), (1, 2)], root=0, terminals=[1])  # has out-edge


class TestRelaxRootDegree:
    def test_round_trip(self):
        strict = DirectedNetwork(3, [(0, 2), (2, 1)], root=0, terminal=1, strict_root=True)
        relaxed = relax_root_degree(strict)
        assert relaxed.edges == strict.edges
        assert relaxed.root == strict.root

    def test_combined_extensions_run_end_to_end(self):
        # Multi-source, multi-sink, cyclic middle — all three §2 extensions.
        edges = [(0, 2), (1, 3), (2, 3), (3, 2), (2, 4), (3, 5)]
        multi = merge_roots(6, edges, roots=[0, 1], terminal=5)
        # merge_roots produced vertex 6 as root; now merge sinks 4 and 5.
        combined = merge_terminals(
            multi.num_vertices, list(multi.edges), root=multi.root, terminals=[4, 5]
        )
        result = run_protocol(combined, GeneralBroadcastProtocol("m"))
        assert result.terminated
