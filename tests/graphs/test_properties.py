"""Tests for structural predicates and linear-cut enumeration."""

import pytest

from repro.graphs.constructions import caterpillar_gn
from repro.graphs.generators import path_network, random_dag, random_digraph, random_grounded_tree
from repro.graphs.properties import (
    classify,
    cut_edges,
    is_dag,
    is_grounded_tree,
    is_linear_cut,
    linear_cuts,
)
from repro.network.graph import DirectedNetwork


class TestPredicates:
    def test_grounded_tree_positive(self):
        assert is_grounded_tree(path_network(4))
        assert is_grounded_tree(caterpillar_gn(6))

    def test_grounded_tree_negative(self):
        net = random_dag(20, seed=0)
        if any(net.in_degree(v) > 1 for v in net.internal_vertices()):
            assert not is_grounded_tree(net)

    def test_dag(self):
        assert is_dag(random_dag(20, seed=1))
        assert not is_dag(
            DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        )

    def test_classify_hierarchy(self):
        assert classify(path_network(3)) == "grounded-tree"
        cyclic = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        assert classify(cyclic) == "general"


class TestLinearCuts:
    def test_definition(self):
        net = caterpillar_gn(4)
        assert is_linear_cut(net, {0, 2})  # {s, v1}
        assert is_linear_cut(net, {0, 2, 3})
        # v2 without v1: v2's ancestor is on the wrong side.
        assert not is_linear_cut(net, {0, 3})
        # Both sides must be non-empty / proper.
        assert not is_linear_cut(net, set())
        assert not is_linear_cut(net, set(range(net.num_vertices)))

    def test_enumeration_is_valid_and_complete_on_path(self):
        net = path_network(3)  # s v1 v2 v3 t — ancestor-closed prefixes only
        cuts = list(linear_cuts(net))
        for v1 in cuts:
            assert is_linear_cut(net, v1)
        # Prefixes {s}, {s,v1}, {s,v1,v2}, {s,v1,v2,v3}.
        assert len(cuts) == 4

    def test_enumeration_on_caterpillar(self):
        net = caterpillar_gn(3)
        cuts = list(linear_cuts(net))
        assert all(is_linear_cut(net, v1) for v1 in cuts)
        assert {0, 2} in cuts and {0, 2, 3} in cuts

    def test_enumeration_respects_cap(self):
        net = random_dag(12, seed=0)
        cuts = list(linear_cuts(net, max_cuts=5))
        assert len(cuts) <= 5

    def test_cyclic_rejected(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        with pytest.raises(ValueError):
            list(linear_cuts(net))

    def test_cut_edges(self):
        net = caterpillar_gn(3)
        v1 = {0, 2}  # {s, v1}
        edges = cut_edges(net, v1)
        # v1 → v2 and v1 → t cross.
        assert len(edges) == 2
        for eid in edges:
            assert net.edge_tail(eid) in v1
            assert net.edge_head(eid) not in v1
