"""Tests for the random graph generators."""

import pytest

from repro.graphs.generators import (
    layered_diamond_dag,
    path_network,
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
    with_stranded_cycle,
)
from repro.graphs.properties import classify, is_dag, is_grounded_tree


class TestGroundedTrees:
    @pytest.mark.parametrize("seed", range(5))
    def test_structure(self, seed):
        net = random_grounded_tree(40, seed=seed)
        assert is_grounded_tree(net)
        assert net.all_reachable_from_root()
        assert net.all_connected_to_terminal()

    def test_deterministic(self):
        a = random_grounded_tree(30, seed=7)
        b = random_grounded_tree(30, seed=7)
        assert a.edges == b.edges

    def test_seed_changes_structure(self):
        a = random_grounded_tree(30, seed=1)
        b = random_grounded_tree(30, seed=2)
        assert a.edges != b.edges

    def test_size(self):
        net = random_grounded_tree(25, seed=0)
        assert net.num_vertices == 27

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            random_grounded_tree(0)


class TestDags:
    @pytest.mark.parametrize("seed", range(5))
    def test_acyclic_and_connected(self, seed):
        net = random_dag(40, seed=seed)
        assert is_dag(net)
        assert net.all_reachable_from_root()
        assert net.all_connected_to_terminal()

    def test_denser_than_tree(self):
        tree = random_grounded_tree(40, seed=3)
        dag = random_dag(40, seed=3)
        assert dag.num_edges > tree.num_edges


class TestDigraphs:
    @pytest.mark.parametrize("seed", range(5))
    def test_connected_both_ways(self, seed):
        net = random_digraph(40, seed=seed)
        assert net.all_reachable_from_root()
        assert net.all_connected_to_terminal()

    def test_usually_cyclic(self):
        cyclic = sum(not random_digraph(40, seed=s).is_acyclic() for s in range(10))
        assert cyclic >= 8

    def test_classify(self):
        assert classify(random_grounded_tree(20, seed=0)) == "grounded-tree"
        assert classify(random_dag(20, seed=0)) == "dag"
        assert classify(random_digraph(20, seed=1)) in ("dag", "general")


class TestSpecialShapes:
    def test_path(self):
        net = path_network(5)
        assert is_grounded_tree(net)
        assert net.num_vertices == 7
        assert net.num_edges == 6

    def test_diamond_dag(self):
        net = layered_diamond_dag(4)
        assert is_dag(net)
        assert net.max_out_degree() == 2
        # 2 vertices per layer, entry + s + t.
        assert net.num_vertices == 3 + 2 * 4

    def test_diamond_rejects_zero(self):
        with pytest.raises(ValueError):
            layered_diamond_dag(0)


class TestBadGraphMutators:
    def test_dead_end(self):
        base = random_digraph(15, seed=0)
        bad = with_dead_end_vertex(base)
        assert bad.num_vertices == base.num_vertices + 1
        assert not bad.all_connected_to_terminal()
        assert bad.all_reachable_from_root()
        dead = bad.num_vertices - 1
        assert bad.out_degree(dead) == 0

    def test_stranded_cycle(self):
        base = random_digraph(15, seed=0)
        bad = with_stranded_cycle(base)
        assert bad.num_vertices == base.num_vertices + 2
        assert not bad.all_connected_to_terminal()
        assert bad.all_reachable_from_root()
        assert not bad.is_acyclic()

    def test_rejects_bad_attach_point(self):
        base = random_digraph(10, seed=0)
        with pytest.raises(ValueError):
            with_dead_end_vertex(base, attach_to=base.root)
        with pytest.raises(ValueError):
            with_stranded_cycle(base, attach_to=base.terminal)
