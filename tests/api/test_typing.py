"""RunRecord.metrics typing is honest (ints included) and mypy-enforced.

``RunRecord.metrics`` was annotated ``Dict[str, Optional[float]]`` while
the synchronous engine's ``extra`` injected ints (``rounds``,
``termination_round``).  The annotation is now the widened
:data:`repro.api.MetricValue`; the runtime test pins the int-ness and the
mypy test makes the checker's verdict on ``repro/api/spec.py`` a test
failure instead of an advisory CI annotation (the lint job additionally
gates this file non-advisorily).
"""

import pathlib
import typing

import pytest

import repro.api.spec
from repro.api import MetricValue, RunSpec
from repro.api.spec import RunRecord


def test_metrics_annotation_is_the_widened_union():
    hints = typing.get_type_hints(RunRecord)
    assert hints["metrics"] == typing.Dict[str, MetricValue]
    assert MetricValue == typing.Optional[typing.Union[int, float]]


def test_synchronous_extras_really_are_ints():
    record = RunSpec(
        graph="random-grounded-tree",
        graph_params={"num_internal": 6},
        protocol="tree-broadcast",
        seed=0,
        engine="synchronous",
    ).run()
    assert type(record.metrics["rounds"]) is int
    assert type(record.metrics["termination_round"]) is int
    # ...and they survive the JSON round-trip as ints.
    clone = RunRecord.from_json(record.to_json())
    assert type(clone.metrics["rounds"]) is int


def test_spec_module_is_mypy_clean():
    mypy_api = pytest.importorskip(
        "mypy.api", reason="mypy not installed (CI lint job gates this too)"
    )
    spec_path = pathlib.Path(repro.api.spec.__file__).resolve()
    out, err, status = mypy_api.run(
        [
            "--ignore-missing-imports",
            "--follow-imports=silent",
            "--no-error-summary",
            str(spec_path),
        ]
    )
    assert status == 0, f"mypy errors in spec.py:\n{out}{err}"
