"""Tests for the string-addressable component registries."""

import pytest

import repro  # noqa: F401 - importing the package populates the registries
from repro.api.registry import (
    GRAPH_TRANSFORMS,
    GRAPHS,
    PROTOCOLS,
    SCHEDULERS,
    DuplicateNameError,
    Registry,
    UnknownNameError,
    all_registries,
)
from repro.api import ensure_registered


class TestRegistryMechanics:
    def test_decorator_with_inferred_name(self):
        reg = Registry("widget")

        @reg.register()
        def my_widget_factory():
            return 42

        assert "my-widget-factory" in reg
        assert reg.create("my-widget-factory") == 42

    def test_decorator_prefers_name_attribute(self):
        reg = Registry("widget")

        @reg.register()
        class Thing:
            name = "the-thing"

        assert "the-thing" in reg
        assert isinstance(reg.create("the-thing"), Thing)

    def test_explicit_name_and_direct_registration(self):
        reg = Registry("widget")
        reg.register("direct", lambda: "d")
        assert reg.create("direct") == "d"

        @reg.register("decorated")
        def factory():
            return "x"

        assert reg.get("decorated") is factory

    def test_unknown_name_error_lists_choices(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        with pytest.raises(UnknownNameError) as excinfo:
            reg.get("beta")
        message = str(excinfo.value)
        assert "widget" in message
        assert "beta" in message
        assert "alpha" in message
        # UnknownNameError is a KeyError, so dict-style handling works too.
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("taken", lambda: 1)
        with pytest.raises(DuplicateNameError):
            reg.register("taken", lambda: 2)

    def test_same_factory_reregistration_is_idempotent(self):
        reg = Registry("widget")

        def factory():
            return 1

        reg.register("f", factory)
        reg.register("f", factory)  # no error
        assert len(reg) == 1

    def test_names_sorted_and_iteration(self):
        reg = Registry("widget")
        reg.register("b", lambda: 2)
        reg.register("a", lambda: 1)
        assert reg.names() == ("a", "b")
        assert list(reg) == ["a", "b"]

    def test_create_forwards_params(self):
        reg = Registry("widget")
        reg.register("adder", lambda x, y=0: x + y)
        assert reg.create("adder", 2, y=3) == 5


class TestPopulatedRegistries:
    def test_paper_protocols_registered(self):
        for name in (
            "tree-broadcast",
            "dag-broadcast",
            "general-broadcast",
            "label-assignment",
            "topology-mapping",
        ):
            assert name in PROTOCOLS

    def test_baseline_protocols_registered_after_ensure(self):
        ensure_registered()
        for name in ("naive-tree-broadcast", "eager-dag-broadcast", "flooding"):
            assert name in PROTOCOLS

    def test_graph_families_registered(self):
        for name in (
            "random-grounded-tree",
            "random-dag",
            "random-digraph",
            "layered-diamond-dag",
            "path-network",
            "pruned-tree",
            "caterpillar-gn",
        ):
            assert name in GRAPHS

    def test_transforms_registered(self):
        assert "with-dead-end-vertex" in GRAPH_TRANSFORMS
        assert "with-stranded-cycle" in GRAPH_TRANSFORMS

    def test_schedulers_registered(self):
        for name in (
            "fifo",
            "lifo",
            "random",
            "terminal-last",
            "terminal-first",
            "port-biased",
            "latency",
            "dropping",
        ):
            assert name in SCHEDULERS

    def test_registered_names_match_component_name_attributes(self):
        from repro.core.tree_broadcast import TreeBroadcastProtocol
        from repro.network.scheduler import FifoScheduler

        assert PROTOCOLS.get("tree-broadcast") is TreeBroadcastProtocol
        assert SCHEDULERS.get("fifo") is FifoScheduler

    def test_all_registries_mapping(self):
        registries = all_registries()
        assert set(registries) == {
            "protocols",
            "graphs",
            "graph-transforms",
            "schedulers",
            "engines",
            "aggregators",
            "faults",
            "experiments",
            "store-backends",
        }
        assert registries["protocols"] is PROTOCOLS
