"""Registry-driven kernel completeness: every protocol compiles a kernel.

The fast path is only "the true default" if *every* registered protocol
actually gets a compiled kernel — a protocol silently falling back to the
generic machine would pass every differential test while losing the
speedup.  This suite closes that hole structurally:

* every name in :data:`~repro.api.registry.PROTOCOLS` must either return
  a working ``compile_fastpath`` kernel or be explicitly listed in
  :data:`~repro.network.fastpath.KERNEL_EXEMPT` (empty today — adding a
  protocol without a kernel forces an explicit, reviewable exemption);
* each kernel must expose the full machine interface the engine drivers
  consume, and the snapshot/restore pair the ∀-schedule explorer uses;
* the run-mode edge cases (``stop_at_termination`` and ``max_steps``
  exhaustion) are differentially checked per protocol — the main
  differential suite sweeps schedulers and graph families, this one
  sweeps the engine's early-exit paths through every kernel.
"""

from __future__ import annotations

import pytest

from repro.analysis.benchmark import PROTOCOL_BENCH_GRAPHS
from repro.api import PROTOCOLS, RunSpec, ensure_registered, execute_spec
from repro.network.fastpath import KERNEL_EXEMPT, CompiledNetwork
from repro.network.graph import DirectedNetwork

ensure_registered()

#: The machine interface the fastpath engine drivers consume.
MACHINE_ATTRS = (
    "initial_emissions",
    "deliver",
    "check_terminal",
    "finalize_states",
    "output",
)

#: A graph family on which each protocol terminates (its natural habitat);
#: used for the early-stop differential runs so ``stop_at_termination``
#: actually has a termination to stop at.  Shared with the bench coverage
#: matrix so a new protocol's habitat is declared exactly once.
TERMINATING_GRAPH = PROTOCOL_BENCH_GRAPHS


def small_compiled() -> CompiledNetwork:
    net = DirectedNetwork(4, [(0, 1), (0, 2), (1, 3), (2, 3)], root=0, terminal=3)
    return CompiledNetwork(net)


class TestCompleteness:
    def test_exempt_set_is_empty(self):
        # The PR that introduced full coverage left nothing exempt; a new
        # exemption must be added (and justified) here explicitly.
        assert KERNEL_EXEMPT == frozenset()

    def test_exempt_names_are_registered(self):
        assert set(KERNEL_EXEMPT) <= set(PROTOCOLS.names())

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS.names()))
    def test_every_protocol_compiles_a_kernel_or_is_exempt(self, protocol):
        kernel = PROTOCOLS.create(protocol).compile_fastpath(small_compiled())
        if kernel is None:
            assert protocol in KERNEL_EXEMPT, (
                f"protocol {protocol!r} returns no compile_fastpath kernel "
                "and is not listed in KERNEL_EXEMPT"
            )
            return
        for attr in MACHINE_ATTRS:
            assert callable(getattr(kernel, attr, None)), (protocol, attr)

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS.names()))
    def test_every_kernel_supports_snapshot_restore(self, protocol):
        kernel = PROTOCOLS.create(protocol).compile_fastpath(small_compiled())
        if kernel is None:
            pytest.skip("exempt protocol (no kernel)")
        assert callable(getattr(kernel, "snapshot", None)), protocol
        assert callable(getattr(kernel, "restore", None)), protocol
        snap = kernel.snapshot()
        kernel.restore(snap)
        assert kernel.snapshot() == snap

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS.names()))
    def test_behaviour_subclasses_fall_back_to_generic(self, protocol):
        # The exact-type guard: a subclass that could override behaviour
        # must not inherit the parent's kernel.
        cls = PROTOCOLS.get(protocol)

        class Tweaked(cls):  # type: ignore[misc, valid-type]
            name = f"tweaked-{protocol}"

        assert Tweaked().compile_fastpath(small_compiled()) is None


def _engine_pair(spec: RunSpec):
    out = []
    for engine in ("async", "fastpath"):
        record = execute_spec(
            RunSpec.from_dict({**spec.to_dict(), "engine": engine})
        ).comparable_dict()
        record["spec"].pop("engine")
        out.append(record)
    return out


class TestRunModeEdgeCases:
    """``stop_at_termination`` and budget exhaustion, per kernel."""

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS.names()))
    def test_stop_at_termination_matches(self, protocol):
        spec = RunSpec(
            graph=TERMINATING_GRAPH.get(protocol, "random-digraph"),
            graph_params={"num_internal": 8},
            protocol=protocol,
            seed=13,
            max_steps=20_000,
            stop_at_termination=True,
        )
        reference, fast = _engine_pair(spec)
        assert fast == reference

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS.names()))
    @pytest.mark.parametrize("budget", [1, 7, 23])
    def test_budget_exhaustion_matches(self, protocol, budget):
        spec = RunSpec(
            graph=TERMINATING_GRAPH.get(protocol, "random-digraph"),
            graph_params={"num_internal": 8},
            protocol=protocol,
            seed=13,
            max_steps=budget,
        )
        reference, fast = _engine_pair(spec)
        assert fast == reference
        if budget == 1:
            # One delivery with the initial wave still in flight: always
            # an exhaustion, on both engines.
            assert fast["outcome"] == "budget-exhausted"
