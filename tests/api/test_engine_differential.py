"""Differential equivalence: fastpath vs async, over the whole vocabulary.

The fast-path engine's contract is *result identity*: for any spec, the
``fastpath`` engine must produce exactly the record the ``async`` reference
engine produces — same outcome, same step counts, every metric equal —
modulo the wall-clock :data:`~repro.api.spec.TIMING_FIELDS`.  This suite
enforces that contract over every registered protocol × three graph
families × every registered scheduler, which covers both the generic
machine (cheap protocols) and the compiled interval kernel
(general-broadcast / label-assignment).

Some combinations are intentionally "wrong" for the protocol (a tree
protocol on a cyclic digraph may spin until the budget runs out); the
contract still applies — both engines must agree on the budget-exhausted
record too — so runs are capped with a small ``max_steps``.
"""

from __future__ import annotations

import pytest

from repro.api import PROTOCOLS, SCHEDULERS, RunSpec, ensure_registered, execute_spec

ensure_registered()

GRAPH_FAMILIES = (
    ("random-grounded-tree", {"num_internal": 7}),
    ("random-dag", {"num_internal": 7}),
    ("random-digraph", {"num_internal": 7}),
)

#: Cap runaway combinations (e.g. scalar protocols on cyclic graphs) while
#: staying far above the step count of every well-matched combination.
MAX_STEPS = 4000


def _records(spec: RunSpec):
    """The comparable dicts of both engines, with the engine field removed."""
    out = []
    for engine in ("async", "fastpath"):
        record = execute_spec(
            RunSpec.from_dict({**spec.to_dict(), "engine": engine})
        ).comparable_dict()
        record["spec"].pop("engine")
        out.append(record)
    return out


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS.names()))
@pytest.mark.parametrize("graph,graph_params", GRAPH_FAMILIES)
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS.names()))
def test_fastpath_matches_async(protocol, graph, graph_params, scheduler):
    spec = RunSpec(
        graph=graph,
        graph_params=graph_params,
        protocol=protocol,
        scheduler=scheduler,
        seed=11,
        max_steps=MAX_STEPS,
    )
    reference, fast = _records(spec)
    assert fast == reference


@pytest.mark.parametrize(
    "protocol_params",
    [
        {"broadcast_payload": "hello world"},
        {"reserve_label": True},
        {"partition_rule": "literal"},
    ],
    ids=["payload", "reserve-label", "literal-partition"],
)
def test_fastpath_matches_async_interval_kernel_variants(protocol_params):
    """Kernel-specific parameter variants of the §4 protocol."""
    spec = RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 10},
        protocol="general-broadcast",
        protocol_params=protocol_params,
        seed=3,
    )
    reference, fast = _records(spec)
    assert fast == reference


@pytest.mark.parametrize("label_endpoints", [False, True])
def test_fastpath_matches_async_labeling_modes(label_endpoints):
    spec = RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 10},
        protocol="label-assignment",
        protocol_params={"label_endpoints": label_endpoints},
        seed=3,
    )
    reference, fast = _records(spec)
    assert fast == reference


@pytest.mark.parametrize(
    "overrides",
    [
        {"graph_transforms": ["with-dead-end-vertex"]},
        {"graph_transforms": ["with-stranded-cycle"]},
        {"stop_at_termination": True},
        {"max_steps": 17},
        {"record_trace": True},
        {"track_state_bits": True},
    ],
    ids=["dead-end", "stranded-cycle", "stop-at-termination", "tiny-budget", "trace", "state-bits"],
)
def test_fastpath_matches_async_run_modes(overrides):
    """Quiescence, early stop, budget exhaustion and the fallback paths."""
    spec = RunSpec.from_dict(
        {
            **RunSpec(
                graph="random-digraph",
                graph_params={"num_internal": 9},
                protocol="general-broadcast",
                seed=2,
            ).to_dict(),
            **overrides,
        }
    )
    reference, fast = _records(spec)
    assert fast == reference


def test_fastpath_runs_through_batch_runner(tmp_path):
    """RunSpec(engine="fastpath") works end-to-end through BatchRunner."""
    from repro.api import BatchRunner

    specs = [
        RunSpec(
            graph="random-digraph",
            graph_params={"num_internal": 6},
            protocol="general-broadcast",
            engine="fastpath",
            seed=seed,
        )
        for seed in range(3)
    ]
    out = tmp_path / "records.jsonl"
    runner = BatchRunner(max_workers=2)
    records = runner.run(specs, output_path=str(out))
    assert [r.spec for r in records] == specs
    assert all(r.terminated for r in records)
    # Resume is a no-op for fastpath records too.
    runner.run(specs, output_path=str(out))
    assert runner.stats.executed == 0
    assert runner.stats.reused == 3
