"""Tests for the BatchRunner: ordering, determinism, persistence, resume."""

import json

import pytest

from repro.api import BatchRunner, RunSpec, load_records, run_specs


def tree_specs(n: int, size: int = 10):
    return [
        RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": size},
            protocol="tree-broadcast",
            seed=seed,
        )
        for seed in range(n)
    ]


def strip_timing(line: str) -> str:
    payload = json.loads(line)
    payload.pop("elapsed_seconds", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestOrderingAndDeterminism:
    def test_records_in_input_order(self):
        specs = tree_specs(5)
        records = BatchRunner(parallel=False).run(specs)
        assert [r.spec for r in records] == specs

    def test_serial_and_parallel_agree_modulo_timing(self):
        specs = tree_specs(6)
        serial = BatchRunner(parallel=False).run(specs)
        parallel = BatchRunner(max_workers=2, chunksize=2).run(specs)
        assert [r.comparable_dict() for r in serial] == [
            r.comparable_dict() for r in parallel
        ]

    def test_jsonl_byte_identical_modulo_timing(self, tmp_path):
        specs = tree_specs(6)
        out_a = tmp_path / "a.jsonl"
        out_b = tmp_path / "b.jsonl"
        BatchRunner(parallel=False).run(specs, output_path=str(out_a))
        BatchRunner(max_workers=2).run(specs, output_path=str(out_b))
        lines_a = out_a.read_text(encoding="utf-8").splitlines()
        lines_b = out_b.read_text(encoding="utf-8").splitlines()
        assert len(lines_a) == len(lines_b) == len(specs)
        assert [strip_timing(l) for l in lines_a] == [strip_timing(l) for l in lines_b]


class TestPersistenceAndResume:
    def test_output_file_parses_back(self, tmp_path):
        specs = tree_specs(4)
        out = tmp_path / "out.jsonl"
        records = BatchRunner(parallel=False).run(specs, output_path=str(out))
        loaded = load_records(str(out))
        assert [r.comparable_dict() for r in loaded] == [
            r.comparable_dict() for r in records
        ]

    def test_resume_skips_finished_specs(self, tmp_path):
        specs = tree_specs(8)
        out = tmp_path / "out.jsonl"
        runner = BatchRunner(parallel=False)

        # Simulate a batch killed after 3 specs: keep only 3 output lines.
        runner.run(specs[:3], output_path=str(out))
        assert runner.stats.executed == 3

        records = runner.run(specs, output_path=str(out))
        assert runner.stats.executed == 5
        assert runner.stats.reused == 3
        assert len(records) == 8
        assert [r.spec for r in records] == specs

        # A third run recomputes nothing at all.
        again = runner.run(specs, output_path=str(out))
        assert runner.stats.executed == 0
        assert runner.stats.reused == 8
        assert [r.comparable_dict() for r in again] == [
            r.comparable_dict() for r in records
        ]

    def test_resume_tolerates_truncated_final_line(self, tmp_path):
        specs = tree_specs(4)
        out = tmp_path / "out.jsonl"
        runner = BatchRunner(parallel=False)
        runner.run(specs, output_path=str(out))
        lines = out.read_text(encoding="utf-8").splitlines()
        # Chop the last record in half, as a mid-write crash would.
        out.write_text("\n".join(lines[:3] + [lines[3][: len(lines[3]) // 2]]) + "\n")
        records = runner.run(specs, output_path=str(out))
        assert runner.stats.executed == 1
        assert runner.stats.reused == 3
        assert len(records) == 4
        # The rewritten file is whole again.
        assert len(load_records(str(out))) == 4

    def test_subset_rerun_preserves_other_records(self, tmp_path):
        specs = tree_specs(6)
        out = tmp_path / "out.jsonl"
        runner = BatchRunner(parallel=False)
        runner.run(specs, output_path=str(out))

        subset_records = runner.run(specs[2:4], output_path=str(out))
        assert runner.stats.executed == 0
        assert len(subset_records) == 2
        # The four records outside the subset batch survive in the file.
        kept = load_records(str(out))
        assert len(kept) == 6
        assert {r.spec.spec_id for r in kept} == {s.spec_id for s in specs}

    def test_no_resume_forces_recompute(self, tmp_path):
        specs = tree_specs(3)
        out = tmp_path / "out.jsonl"
        runner = BatchRunner(parallel=False)
        runner.run(specs, output_path=str(out))
        runner.run(specs, output_path=str(out), resume=False)
        assert runner.stats.executed == 3

    def test_resume_keyed_by_content_not_label(self, tmp_path):
        specs = tree_specs(3)
        out = tmp_path / "out.jsonl"
        runner = BatchRunner(parallel=False)
        runner.run(specs, output_path=str(out))
        relabeled = [
            RunSpec.from_dict({**s.to_dict(), "label": f"run-{i}"})
            for i, s in enumerate(specs)
        ]
        runner.run(relabeled, output_path=str(out))
        assert runner.stats.executed == 0


class TestEdges:
    def test_duplicate_specs_executed_once(self):
        spec = tree_specs(1)[0]
        runner = BatchRunner(parallel=False)
        records = runner.run([spec, spec, spec])
        assert runner.stats.executed == 1
        assert len(records) == 3
        assert records[0] == records[1] == records[2]

    def test_empty_batch(self, tmp_path):
        out = tmp_path / "out.jsonl"
        runner = BatchRunner(parallel=False)
        assert runner.run([], output_path=str(out)) == []
        assert runner.stats.executed == 0
        assert out.read_text(encoding="utf-8") == ""

    def test_progress_callback(self):
        seen = []
        runner = BatchRunner(parallel=False)
        runner.run(
            tree_specs(3),
            progress=lambda done, total, record: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_run_specs_convenience(self):
        records = run_specs(tree_specs(2), parallel=False)
        assert len(records) == 2
        assert all(r.terminated for r in records)

    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            BatchRunner(max_workers=0)
        with pytest.raises(ValueError):
            BatchRunner(chunksize=0)


def batch_specs(n: int, **overrides):
    """A seed-group for the ``batch`` engine: same shape, seeds 0..n-1."""
    base = dict(
        graph="path-network",
        graph_params={"length": 6},
        protocol="flooding",
        scheduler="random",
        engine="batch",
    )
    base.update(overrides)
    return [RunSpec(seed=seed, **base) for seed in range(n)]


class TestSeedGrouping:
    """Batching-capable engines get their pending work grouped by shape
    (spec id modulo seed) and dispatched through ``run_many``."""

    def test_groups_counted_and_records_match_fastpath(self):
        pytest.importorskip("numpy")
        import dataclasses

        from repro.api import execute_spec

        specs = batch_specs(6)
        runner = BatchRunner(parallel=False, min_group_size=2)
        records = runner.run(specs)
        assert runner.stats.batched_groups == 1
        assert runner.stats.executed == 6
        assert runner.stats.batch_fallbacks == {}
        for record, spec in zip(records, specs):
            twin = execute_spec(dataclasses.replace(spec, engine="fastpath"))
            got, expected = record.comparable_dict(), twin.comparable_dict()
            got["spec"].pop("engine"), expected["spec"].pop("engine")
            assert got == expected

    def test_distinct_shapes_form_distinct_groups(self):
        pytest.importorskip("numpy")
        specs = batch_specs(3) + batch_specs(3, graph_params={"length": 8})
        runner = BatchRunner(parallel=False, min_group_size=2)
        runner.run(specs)
        assert runner.stats.batched_groups == 2

    def test_non_batching_engines_never_group(self):
        runner = BatchRunner(parallel=False)
        runner.run(batch_specs(4, engine="fastpath"))
        assert runner.stats.batched_groups == 0
        assert runner.stats.executed == 4

    def test_singleton_group_skips_run_many(self):
        runner = BatchRunner(parallel=False)
        runner.run(batch_specs(1))
        assert runner.stats.batched_groups == 0
        assert runner.stats.executed == 1

    def test_serial_and_parallel_groups_agree_modulo_timing(self):
        pytest.importorskip("numpy")
        specs = batch_specs(8) + tree_specs(3)
        serial_runner = BatchRunner(parallel=False)
        serial = serial_runner.run(specs)
        parallel_runner = BatchRunner(max_workers=2)
        parallel = parallel_runner.run(specs)
        assert [r.comparable_dict() for r in serial] == [
            r.comparable_dict() for r in parallel
        ]
        assert serial_runner.stats.batched_groups == 1
        assert parallel_runner.stats.batched_groups == 1

    def test_store_hit_inside_group_is_not_reexecuted(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.store import ResultStore

        specs = batch_specs(5)
        store = ResultStore(str(tmp_path / "store"))
        # Pre-populate the store with the *middle* member of the group.
        seeded = BatchRunner(parallel=False, store=store)
        seeded.run([specs[2]])
        runner = BatchRunner(parallel=False, store=store, min_group_size=2)
        records = runner.run(specs)
        assert runner.stats.store_hits == 1
        assert runner.stats.executed == 4  # the hit shrank the group
        assert runner.stats.batched_groups == 1
        assert [r.spec for r in records] == specs

    def test_jsonl_resume_shrinks_group(self, tmp_path):
        pytest.importorskip("numpy")
        specs = batch_specs(5)
        out = tmp_path / "records.jsonl"
        BatchRunner(parallel=False).run(specs[:2], output_path=str(out))
        runner = BatchRunner(parallel=False, min_group_size=2)
        records = runner.run(specs, output_path=str(out))
        assert runner.stats.reused == 2
        assert runner.stats.executed == 3
        assert runner.stats.batched_groups == 1
        assert len(records) == 5


class TestMinGroupSize:
    """Seed-groups below ``min_group_size`` run per-spec (SoA set-up
    overhead beats the speedup at tiny K) and are tallied as fallbacks."""

    def test_default_threshold_turns_small_groups_away(self):
        import dataclasses

        from repro.api import execute_spec
        from repro.api.runner import DEFAULT_MIN_GROUP_SIZE

        specs = batch_specs(DEFAULT_MIN_GROUP_SIZE - 1)
        runner = BatchRunner(parallel=False)
        records = runner.run(specs)
        assert runner.stats.batched_groups == 0
        assert runner.stats.batch_fallbacks == {"small_group": len(specs)}
        # The fallback path is the fastpath engine: records still match.
        for record, spec in zip(records, specs):
            twin = execute_spec(dataclasses.replace(spec, engine="fastpath"))
            got, expected = record.comparable_dict(), twin.comparable_dict()
            got["spec"].pop("engine"), expected["spec"].pop("engine")
            assert got == expected

    def test_default_threshold_batches_at_exactly_eight(self):
        pytest.importorskip("numpy")
        from repro.api.runner import DEFAULT_MIN_GROUP_SIZE

        specs = batch_specs(DEFAULT_MIN_GROUP_SIZE)
        runner = BatchRunner(parallel=False)
        runner.run(specs)
        assert runner.stats.batched_groups == 1
        assert runner.stats.batch_fallbacks == {}

    def test_threshold_override(self):
        pytest.importorskip("numpy")
        specs = batch_specs(3)
        runner = BatchRunner(parallel=False, min_group_size=3)
        runner.run(specs)
        assert runner.stats.batched_groups == 1

        strict = BatchRunner(parallel=False, min_group_size=50)
        strict.run(batch_specs(3, graph_params={"length": 7}))
        assert strict.stats.batched_groups == 0
        assert strict.stats.batch_fallbacks == {"small_group": 3}

    def test_threshold_floor_is_two(self):
        # min_group_size=1 cannot force singleton groups through run_many:
        # there is nothing to batch a singleton with.
        runner = BatchRunner(parallel=False, min_group_size=1)
        runner.run(batch_specs(1))
        assert runner.stats.batched_groups == 0
        assert runner.stats.batch_fallbacks == {}

    def test_singletons_are_not_counted_as_fallbacks(self):
        runner = BatchRunner(parallel=False)
        runner.run(batch_specs(1))
        assert runner.stats.batch_fallbacks == {}

    def test_bad_min_group_size(self):
        with pytest.raises(ValueError):
            BatchRunner(min_group_size=0)


class TestBatchFallbackCounters:
    """``BatchStats.batch_fallbacks`` surfaces why eligible specs ran
    per-seed instead of vectorized."""

    def test_no_kernel_counted_per_spec(self):
        pytest.importorskip("numpy")
        # general-broadcast has no batch kernel: the whole group falls
        # back and every spec is tallied.
        specs = batch_specs(8, protocol="general-broadcast")
        runner = BatchRunner(parallel=False)
        runner.run(specs)
        assert runner.stats.batched_groups == 1  # dispatched, then fell back
        assert runner.stats.batch_fallbacks == {"no_kernel": 8}

    def test_trace_shape_counted(self, tmp_path):
        pytest.importorskip("numpy")
        specs = batch_specs(8, record_trace=True)
        runner = BatchRunner(parallel=False)
        from repro.tracing import capture_traces

        with capture_traces(directory=str(tmp_path)):
            runner.run(specs)
        assert runner.stats.batch_fallbacks == {"trace": 8}

    def test_parallel_pool_merges_worker_fallbacks(self):
        pytest.importorskip("numpy")
        specs = batch_specs(8, protocol="general-broadcast")
        runner = BatchRunner(max_workers=2)
        runner.run(specs)
        assert runner.stats.batch_fallbacks == {"no_kernel": 8}

    def test_vectorized_group_reports_nothing(self):
        pytest.importorskip("numpy")
        runner = BatchRunner(parallel=False)
        runner.run(batch_specs(8))
        assert runner.stats.batched_groups == 1
        assert runner.stats.batch_fallbacks == {}
