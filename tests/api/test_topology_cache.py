"""Tests for the process-local compiled-topology cache.

The cache keys on the spec's graph-defining fields (graph, effective
params with the injected seed, transform chain); runs differing only in
protocol/scheduler/seed-of-a-seedless-graph must share one entry, runs
with different graphs must not, and the counters must surface through
:class:`~repro.api.runner.BatchStats` and the CLI summary lines.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.api import (
    BatchRunner,
    RunSpec,
    TopologyCacheStats,
    clear_topology_cache,
    execute_spec_full,
    topology_cache_stats,
)
from repro.api.spec import _TOPOLOGY_CACHE, compiled_topology


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


def spec_with(**overrides) -> RunSpec:
    payload = dict(
        graph="random-digraph",
        graph_params={"num_internal": 5},
        protocol="general-broadcast",
        seed=3,
    )
    payload.update(overrides)
    return RunSpec(**payload)


class TestNetworkCache:
    def test_same_topology_shares_one_network_object(self):
        _, _, net_a = execute_spec_full(spec_with(protocol="general-broadcast"))
        _, _, net_b = execute_spec_full(spec_with(protocol="label-assignment"))
        assert net_a is net_b
        stats = topology_cache_stats()
        assert stats.misses == 1
        assert stats.hits == 1

    def test_scheduler_axis_shares_the_entry(self):
        execute_spec_full(spec_with(scheduler="fifo"))
        execute_spec_full(spec_with(scheduler="lifo"))
        execute_spec_full(spec_with(scheduler="random"))
        assert topology_cache_stats() == TopologyCacheStats(hits=2, misses=1)

    def test_different_seed_is_a_different_random_graph(self):
        _, _, net_a = execute_spec_full(spec_with(seed=1))
        _, _, net_b = execute_spec_full(spec_with(seed=2))
        assert net_a is not net_b
        assert topology_cache_stats().misses == 2

    def test_seedless_graph_family_shares_across_seeds(self):
        # path-network takes no seed, so the injected-seed key normalises
        # away and a seed sweep hits one entry.
        base = dict(
            graph="path-network",
            graph_params={"length": 4},
            protocol="flooding",
        )
        _, _, net_a = execute_spec_full(RunSpec(**base, seed=1))
        _, _, net_b = execute_spec_full(RunSpec(**base, seed=2))
        assert net_a is net_b
        assert topology_cache_stats() == TopologyCacheStats(hits=1, misses=1)

    def test_transform_chain_is_part_of_the_key(self):
        _, _, plain = execute_spec_full(spec_with())
        _, _, transformed = execute_spec_full(
            spec_with(graph_transforms=("with-dead-end-vertex",))
        )
        assert plain is not transformed
        assert topology_cache_stats().misses == 2

    def test_cached_network_matches_uncached_build(self):
        spec = spec_with()
        _, _, cached = execute_spec_full(spec)
        fresh = spec.build_graph()
        assert fresh.edges == cached.edges
        assert fresh.num_vertices == cached.num_vertices

    def test_bounded_eviction(self):
        for seed in range(_TOPOLOGY_CACHE.maxsize + 5):
            execute_spec_full(spec_with(seed=seed))
        assert len(_TOPOLOGY_CACHE._entries) == _TOPOLOGY_CACHE.maxsize


class TestCompiledCache:
    def test_fastpath_reuses_one_compiled_network(self):
        spec = spec_with(engine="fastpath")
        _, _, network = execute_spec_full(spec)
        compiled_a = compiled_topology(spec, network)
        compiled_b = compiled_topology(spec, network)
        assert compiled_a is compiled_b
        assert compiled_a.network is network

    def test_foreign_network_gets_fresh_uncached_compilation(self):
        spec = spec_with(engine="fastpath")
        execute_spec_full(spec)
        foreign = spec.build_graph()  # bypasses the cache: distinct object
        compiled = compiled_topology(spec, foreign)
        assert compiled.network is foreign
        # The cached entry was not poisoned.
        cached_net = _TOPOLOGY_CACHE.network(spec)
        assert compiled_topology(spec, cached_net).network is cached_net

    def test_fastpath_and_async_records_agree_through_the_cache(self):
        async_rec = spec_with(engine="async").run()
        fast_rec = spec_with(engine="fastpath").run()
        a, f = async_rec.comparable_dict(), fast_rec.comparable_dict()
        a["spec"].pop("engine")
        f["spec"].pop("engine")
        assert a == f


class TestBatchCounters:
    def specs(self):
        return [
            spec_with(protocol=protocol, scheduler=scheduler, engine="fastpath")
            for protocol in ("general-broadcast", "tree-broadcast")
            for scheduler in ("fifo", "lifo", "random")
        ]

    def test_serial_batch_reports_cache_hits(self):
        runner = BatchRunner(parallel=False)
        runner.run(self.specs())
        stats = runner.stats
        assert stats.cache_misses == 1
        assert stats.cache_hits == 5

    def test_parallel_batch_ships_counters_from_workers(self):
        runner = BatchRunner(max_workers=2, chunksize=2)
        runner.run(self.specs())
        stats = runner.stats
        # Each worker process compiles the topology at most once; every
        # remaining run in that worker is a hit.
        assert stats.cache_hits + stats.cache_misses == 6
        assert 1 <= stats.cache_misses <= 2
        assert stats.cache_hits >= 4

    def test_batch_summary_line_carries_cache_counters(self, tmp_path):
        from repro.api import dump_specs
        from repro.cli import main

        spec_file = tmp_path / "specs.json"
        dump_specs(self.specs(), str(spec_file))
        stream = io.StringIO()
        assert main(["batch", str(spec_file), "--serial"], stream=stream) == 0
        lines = [
            line
            for line in stream.getvalue().splitlines()
            if line.startswith("BATCH_SUMMARY ")
        ]
        assert len(lines) == 1
        summary = json.loads(lines[0][len("BATCH_SUMMARY ") :])
        assert summary["cache_misses"] == 1
        assert summary["cache_hits"] == 5


class TestChunksizeAutotune:
    def test_explicit_chunksize_respected(self):
        assert BatchRunner(chunksize=7).effective_chunksize(10_000) == 7

    def test_autotune_floor_is_four(self):
        assert BatchRunner(max_workers=4).effective_chunksize(10) == 4

    def test_autotune_scales_with_batch_size(self):
        runner = BatchRunner(max_workers=4)
        assert runner.effective_chunksize(3200) == 100

    def test_zero_chunksize_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(chunksize=0)
