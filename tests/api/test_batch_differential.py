"""Differential equivalence: the ``batch`` engine vs per-seed fastpath.

The batch engine's contract is *result identity per (spec, seed)*: a
seed-group dispatched through ``run_many`` must yield, run for run,
exactly the record the ``fastpath`` engine produces for the same spec
with that seed — same outcome, same step and message counts, every
metric equal — modulo the wall-clock :data:`~repro.api.spec.TIMING_FIELDS`
and the ``engine`` field itself.  That holds both when the group truly
vectorizes (every flat-kernel protocol under a stock random scheduler:
one state tensor, RNG streams bit-identical to CPython's MT19937) and
when it falls back to per-spec execution (non-random schedulers,
protocols without a batch kernel, graphs a kernel declines), so callers
never need to know which path ran.  The protocol axis is registry-driven:
every registered protocol outside
:data:`~repro.network.batchpath.BATCH_KERNEL_EXEMPT` is swept, so a new
protocol joins this matrix (and the batch completeness gate below)
automatically.

The MT19937 claim is load-bearing enough to test directly:
:class:`~repro.network.batchpath.MTStreams` is compared word for word
against ``random.Random`` over adversarial call patterns (rejection
stragglers, buffer-boundary reseeds, subset draws, stream compaction).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

np = pytest.importorskip("numpy")

from repro.api import ENGINES, PROTOCOLS, RunSpec, ensure_registered, execute_spec
from repro.network.batchpath import (
    BATCH_KERNEL_EXEMPT,
    MTStreams,
    run_many_batched,
)

ensure_registered()

#: One representative per registered graph family (every topology shape
#: the batch kernel's padded scatter must handle: paths, stars-on-a-spine,
#: trees, DAGs, cyclic digraphs, geometric fields).  Stochastic families
#: pin their *graph* seed so a seed-group shares one topology (and so the
#: splitting kernels actually vectorize instead of shattering into
#: singleton fallbacks).
GRAPH_FAMILIES = (
    ("path-network", {"length": 6}),
    ("caterpillar-gn", {"n": 5}),
    ("random-grounded-tree", {"num_internal": 7, "seed": 5}),
    ("random-dag", {"num_internal": 7, "seed": 3}),
    ("random-digraph", {"num_internal": 7, "seed": 3}),
    ("layered-diamond-dag", {"depth": 3}),
    ("geometric-sensor-field", {"num_sensors": 12, "seed": 1}),
    ("full-tree-with-terminal", {"degree": 2, "height": 3}),
)

#: Every protocol with a batch kernel, straight from the registry; graphs
#: a kernel declines (e.g. the splitting kernels on cyclic digraphs)
#: exercise the per-spec fallback path within the same matrix.
PROTOCOLS_UNDER_TEST = tuple(
    name for name in sorted(PROTOCOLS.names()) if name not in BATCH_KERNEL_EXEMPT
)

#: One exempt protocol to pin the no-kernel fallback path explicitly.
EXEMPT_PROTOCOL = "general-broadcast"

SEEDS = list(range(9))


def comparable(record):
    """The record as a dict, modulo timing and the engine tag."""
    payload = record.comparable_dict()
    payload["spec"].pop("engine")
    return payload


def fastpath_twin(spec: RunSpec, seed) -> dict:
    return comparable(
        execute_spec(dataclasses.replace(spec, engine="fastpath", seed=seed))
    )


def run_group(spec: RunSpec, seeds):
    records = run_many_batched(spec, seeds)
    assert [r.spec.seed for r in records] == list(seeds), "input order lost"
    assert all(r.spec.engine == spec.engine for r in records)
    return records


@pytest.mark.parametrize("graph,graph_params", GRAPH_FAMILIES)
@pytest.mark.parametrize("protocol", PROTOCOLS_UNDER_TEST)
def test_batch_matches_fastpath(protocol, graph, graph_params):
    spec = RunSpec(
        graph=graph,
        graph_params=graph_params,
        protocol=protocol,
        scheduler="random",
        engine="batch",
        max_steps=4000,
    )
    for record, seed in zip(run_group(spec, SEEDS), SEEDS):
        assert comparable(record) == fastpath_twin(spec, seed), (
            f"batch != fastpath for {protocol} on {graph} seed {seed}"
        )


@pytest.mark.parametrize("scheduler", ["fifo", "lifo", "terminal-first"])
def test_non_random_schedulers_fall_back_and_still_match(scheduler):
    spec = RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 7, "seed": 3},
        protocol="flooding",
        scheduler=scheduler,
        engine="batch",
        max_steps=4000,
    )
    for record, seed in zip(run_group(spec, SEEDS[:4]), SEEDS[:4]):
        assert comparable(record) == fastpath_twin(spec, seed)


def test_pinned_scheduler_seed_still_matches():
    """All runs share one scheduler stream seed; records must still agree."""
    spec = RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 7, "seed": 3},
        protocol="flooding",
        scheduler="random",
        scheduler_params={"seed": 1234},
        engine="batch",
        max_steps=4000,
    )
    for record, seed in zip(run_group(spec, SEEDS[:5]), SEEDS[:5]):
        assert comparable(record) == fastpath_twin(spec, seed)


def test_bounded_budget_takes_general_loop_and_matches():
    """A small ``max_steps`` forces the per-pop loop; identity still holds."""
    spec = RunSpec(
        graph="geometric-sensor-field",
        graph_params={"num_sensors": 12, "seed": 1},
        protocol="flooding",
        scheduler="random",
        engine="batch",
        max_steps=30,
    )
    for record, seed in zip(run_group(spec, SEEDS), SEEDS):
        record_dict = comparable(record)
        assert record_dict == fastpath_twin(spec, seed)
        assert record_dict["metrics"]["steps"] <= 30


@pytest.mark.parametrize("protocol", PROTOCOLS_UNDER_TEST)
def test_k1_group_is_exactly_one_fastpath_run(protocol):
    spec = RunSpec(
        graph="path-network",
        graph_params={"length": 6},
        protocol=protocol,
        scheduler="random",
        engine="batch",
    )
    (record,) = run_group(spec, [7])
    assert comparable(record) == fastpath_twin(spec, 7)


@pytest.mark.parametrize("protocol", PROTOCOLS_UNDER_TEST)
def test_stop_at_termination_matches(protocol):
    """The early-exit path through every batch kernel's termination latch."""
    spec = RunSpec(
        graph=GRAPH_FAMILIES[2][0],
        graph_params=GRAPH_FAMILIES[2][1],
        protocol=protocol,
        scheduler="random",
        engine="batch",
        stop_at_termination=True,
        max_steps=4000,
    )
    for record, seed in zip(run_group(spec, SEEDS), SEEDS):
        assert comparable(record) == fastpath_twin(spec, seed), (
            f"stop_at_termination mismatch for {protocol} seed {seed}"
        )


def test_exempt_protocol_falls_back_and_still_matches():
    """A protocol with no batch kernel runs per-spec, record-identical."""
    spec = RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 7, "seed": 3},
        protocol=EXEMPT_PROTOCOL,
        scheduler="random",
        engine="batch",
        max_steps=4000,
    )
    fallbacks = {}
    records = run_many_batched(spec, SEEDS[:4], fallbacks)
    assert fallbacks == {"no_kernel": 4}
    for record, seed in zip(records, SEEDS[:4]):
        assert comparable(record) == fastpath_twin(spec, seed)


@pytest.mark.parametrize("protocol", PROTOCOLS_UNDER_TEST)
def test_ragged_group_with_none_and_duplicate_seeds(protocol):
    """Unvectorizable members (seed=None draws entropy) execute as
    leftovers; duplicates must each get their own identical record."""
    spec = RunSpec(
        graph="path-network",
        graph_params={"length": 6},
        protocol=protocol,
        scheduler="random",
        engine="batch",
    )
    seeds = [3, 5, 3, None, 8]
    records = run_many_batched(spec, seeds)
    assert [r.spec.seed for r in records[:3]] == [3, 5, 3]
    assert comparable(records[0]) == comparable(records[2]) == fastpath_twin(spec, 3)
    assert comparable(records[1]) == fastpath_twin(spec, 5)
    assert comparable(records[4]) == fastpath_twin(spec, 8)
    assert records[3].spec.seed is None  # entropy-seeded, still executed


def test_records_round_trip_through_json():
    from repro.api import RunRecord

    spec = RunSpec(
        graph="random-dag",
        graph_params={"num_internal": 7, "seed": 3},
        protocol="flooding",
        scheduler="random",
        engine="batch",
        max_steps=4000,
    )
    for record in run_group(spec, SEEDS[:3]):
        clone = RunRecord.from_dict(record.to_dict())
        assert comparable(clone) == comparable(record)


def test_engine_registry_dispatches_run_many():
    info = ENGINES.get("batch")
    spec = RunSpec(
        graph="path-network",
        graph_params={"length": 6},
        protocol="flooding",
        scheduler="random",
        engine="batch",
    )
    records = info.run_many(spec, SEEDS[:4])
    for record, seed in zip(records, SEEDS[:4]):
        assert comparable(record) == fastpath_twin(spec, seed)


# ---------------------------------------------------------------------------
# Registry-driven batch-kernel completeness (mirrors the fastpath gate in
# test_kernel_completeness.py): every registered protocol must either
# return a working compile_batch kernel or be explicitly listed in
# BATCH_KERNEL_EXEMPT — a protocol silently losing its batch kernel would
# pass every differential test above while quietly running per-seed.
# ---------------------------------------------------------------------------


def small_compiled():
    from repro.network.fastpath import CompiledNetwork
    from repro.network.graph import DirectedNetwork

    net = DirectedNetwork(4, [(0, 1), (0, 2), (1, 3), (2, 3)], root=0, terminal=3)
    return CompiledNetwork(net)


class TestBatchKernelCompleteness:
    def test_exempt_names_are_registered(self):
        assert set(BATCH_KERNEL_EXEMPT) <= set(PROTOCOLS.names())

    def test_exempt_set_is_exactly_the_object_state_protocols(self):
        # The three protocols whose per-vertex state is an arbitrary
        # Python object (sets of vertex ids, label tables) rather than a
        # flat token; widening this set is a reviewable decision here.
        assert BATCH_KERNEL_EXEMPT == frozenset(
            {"general-broadcast", "label-assignment", "topology-mapping"}
        )

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS.names()))
    def test_every_protocol_compiles_a_batch_kernel_or_is_exempt(self, protocol):
        kernel = PROTOCOLS.create(protocol).compile_batch(small_compiled())
        if kernel is None:
            assert protocol in BATCH_KERNEL_EXEMPT, (
                f"protocol {protocol!r} returns no compile_batch kernel "
                "and is not listed in BATCH_KERNEL_EXEMPT"
            )
            return
        assert protocol not in BATCH_KERNEL_EXEMPT, (
            f"protocol {protocol!r} compiles a batch kernel but is listed "
            "in BATCH_KERNEL_EXEMPT — remove the stale exemption"
        )
        assert callable(getattr(kernel, "run", None)), protocol

    @pytest.mark.parametrize("protocol", PROTOCOLS_UNDER_TEST)
    def test_subclasses_do_not_inherit_the_batch_kernel(self, protocol):
        # Exact-type guard: a subclass may override deliver()/emissions,
        # which the compiled kernel would silently ignore.
        cls = PROTOCOLS.get(protocol)

        class Tweaked(cls):  # type: ignore[misc, valid-type]
            name = f"tweaked-{protocol}"

        assert Tweaked().compile_batch(small_compiled()) is None


# ---------------------------------------------------------------------------
# MTStreams vs random.Random: exact MT19937 parity
# ---------------------------------------------------------------------------


class TestMTStreamsParity:
    def _references(self, seeds):
        return [random.Random(s) for s in seeds]

    def test_dense_walk_matches_cpython(self):
        seeds = [0, 1, 2**31, 2**32 - 1, 12345, 424242, 7, 99]
        streams = MTStreams(seeds)
        refs = self._references(seeds)
        rng = random.Random(2027)
        for _ in range(3000):
            # mixed magnitudes, including powers of two and n=1
            n = np.array(
                [rng.choice([1, 2, 3, 7, 8, 100, 2**16, 2**31 - 1]) for _ in refs],
                dtype=np.int64,
            )
            got = streams.randbelow_dense(n)
            expected = [ref._randbelow(int(m)) for ref, m in zip(refs, n)]
            assert got.tolist() == expected

    def test_tiny_n_straggler_storm(self):
        """n=3 rejects ~25% of draws: the straggler path dominates."""
        seeds = list(range(16))
        streams = MTStreams(seeds)
        refs = self._references(seeds)
        n = np.full(16, 3, dtype=np.int64)
        for _ in range(2000):
            got = streams.randbelow_dense(n)
            expected = [ref._randbelow(3) for ref in refs]
            assert got.tolist() == expected

    def test_subset_draws_match(self):
        seeds = [11, 22, 33, 44, 55]
        streams = MTStreams(seeds)
        refs = self._references(seeds)
        rng = random.Random(9)
        for _ in range(1500):
            cols = np.array(
                sorted(rng.sample(range(5), rng.randint(1, 5))), dtype=np.int64
            )
            n = np.array([rng.randint(1, 50) for _ in cols], dtype=np.int64)
            got = streams.randbelow(n, cols)
            expected = [refs[c]._randbelow(int(m)) for c, m in zip(cols, n)]
            assert got.tolist() == expected

    def test_compact_preserves_stream_positions(self):
        seeds = [5, 6, 7, 8]
        streams = MTStreams(seeds)
        refs = self._references(seeds)
        n = np.full(4, 10, dtype=np.int64)
        for _ in range(700):
            assert streams.randbelow_dense(n).tolist() == [
                ref._randbelow(10) for ref in refs
            ]
        keep = np.array([0, 2], dtype=np.int64)
        streams.compact(keep)
        kept_refs = [refs[0], refs[2]]
        n2 = np.full(2, 10, dtype=np.int64)
        for _ in range(1400):  # crosses the next buffer boundary
            assert streams.randbelow_dense(n2).tolist() == [
                ref._randbelow(10) for ref in kept_refs
            ]

    def test_seed_cache_returns_fresh_state(self):
        """The lru-cached seeded state must not alias between instances."""
        a = MTStreams([1, 2])
        n = np.full(2, 5, dtype=np.int64)
        first = [a.randbelow_dense(n).tolist() for _ in range(10)]
        b = MTStreams([1, 2])
        second = [b.randbelow_dense(n).tolist() for _ in range(10)]
        assert first == second
