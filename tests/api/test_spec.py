"""Tests for RunSpec / RunRecord: round-trip, materialization, execution."""

import json

import pytest

from repro.api import (
    RunRecord,
    RunSpec,
    SpecError,
    UnknownNameError,
    execute_spec,
    execute_spec_full,
)
from repro.api.spec import TIMING_FIELDS, dump_specs, load_specs
from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.graphs.generators import random_digraph
from repro.network.scheduler import LatencyScheduler, RandomScheduler
from repro.network.simulator import run_protocol
from repro.network.synchronous import run_protocol_synchronous


def digraph_spec(**overrides) -> RunSpec:
    base = dict(
        graph="random-digraph",
        graph_params={"num_internal": 12},
        protocol="general-broadcast",
        seed=3,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRoundTrip:
    def test_from_dict_to_dict_identity(self):
        spec = digraph_spec(
            protocol_params={"broadcast_payload": "hello"},
            graph_transforms=("with-dead-end-vertex",),
            scheduler="random",
            scheduler_params={"seed": 5},
            engine="synchronous",
            max_steps=1000,
            record_trace=True,
            track_state_bits=True,
            stop_at_termination=True,
            label="round-trip",
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = digraph_spec(graph_transforms=("with-stranded-cycle",))
        assert RunSpec.from_json(spec.to_json()) == spec
        # and the dict really is plain JSON data
        json.dumps(spec.to_dict())

    def test_transform_lists_normalize_to_tuples(self):
        payload = digraph_spec().to_dict()
        payload["graph_transforms"] = ["with-dead-end-vertex"]  # JSON gives lists
        spec = RunSpec.from_dict(payload)
        assert spec.graph_transforms == ("with-dead-end-vertex",)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        payload = digraph_spec().to_dict()
        payload["not_a_field"] = 1
        with pytest.raises(SpecError):
            RunSpec.from_dict(payload)

    def test_bad_engine_rejected(self):
        with pytest.raises(SpecError):
            digraph_spec(engine="quantum")

    def test_non_json_params_rejected(self):
        with pytest.raises(SpecError):
            digraph_spec(protocol_params={"payload": object()})

    def test_spec_file_round_trip(self, tmp_path):
        specs = [digraph_spec(seed=s) for s in range(3)]
        path = tmp_path / "specs.json"
        dump_specs(specs, str(path))
        assert load_specs(str(path)) == specs

    def test_load_specs_accepts_single_object_and_jsonl(self, tmp_path):
        spec = digraph_spec()
        single = tmp_path / "one.json"
        single.write_text(spec.to_json(), encoding="utf-8")
        assert load_specs(str(single)) == [spec]

        jsonl = tmp_path / "many.jsonl"
        jsonl.write_text(
            "\n".join(digraph_spec(seed=s).to_json() for s in range(3)),
            encoding="utf-8",
        )
        assert len(load_specs(str(jsonl))) == 3


class TestIdentity:
    def test_spec_id_stable(self):
        assert digraph_spec().spec_id == digraph_spec().spec_id

    def test_label_does_not_change_identity(self):
        assert digraph_spec(label="a").spec_id == digraph_spec(label="b").spec_id
        assert digraph_spec(label="a") != digraph_spec(label="b")

    def test_any_other_field_changes_identity(self):
        base = digraph_spec()
        assert base.spec_id != digraph_spec(seed=4).spec_id
        assert base.spec_id != digraph_spec(protocol="label-assignment").spec_id
        assert base.spec_id != digraph_spec(scheduler="lifo").spec_id

    def test_specs_are_hashable(self):
        assert len({digraph_spec(), digraph_spec(), digraph_spec(seed=9)}) == 2


class TestMaterialization:
    def test_build_graph_matches_direct_call(self):
        net = digraph_spec().build_graph()
        direct = random_digraph(12, seed=3)
        assert net.num_vertices == direct.num_vertices
        assert list(net.edges) == list(direct.edges)

    def test_seed_injection_defers_to_explicit_param(self):
        spec = digraph_spec(graph_params={"num_internal": 12, "seed": 8}, seed=3)
        direct = random_digraph(12, seed=8)
        assert list(spec.build_graph().edges) == list(direct.edges)

    def test_seed_not_injected_where_unsupported(self):
        spec = RunSpec(
            graph="layered-diamond-dag",
            graph_params={"depth": 3},
            protocol="dag-broadcast",
            seed=17,
        )
        spec.build_graph()  # would TypeError if seed were passed through

    def test_build_protocol(self):
        protocol = digraph_spec(
            protocol_params={"broadcast_payload": "hi"}
        ).build_protocol()
        assert isinstance(protocol, GeneralBroadcastProtocol)
        assert protocol.broadcast_payload == "hi"

    def test_build_scheduler_with_seed_injection(self):
        sched = digraph_spec(scheduler="random").build_scheduler()
        assert isinstance(sched, RandomScheduler)
        assert sched.seed == 3  # top-level spec seed injected
        explicit = digraph_spec(
            scheduler="latency", scheduler_params={"seed": 0, "min_latency": 2.0}
        ).build_scheduler()
        assert isinstance(explicit, LatencyScheduler)

    def test_unknown_names_fail_at_build_time(self):
        with pytest.raises(UnknownNameError):
            digraph_spec(graph="no-such-graph").build_graph()
        with pytest.raises(UnknownNameError):
            digraph_spec(protocol="no-such-protocol").build_protocol()
        with pytest.raises(UnknownNameError):
            digraph_spec(scheduler="no-such-scheduler").build_scheduler()

    def test_transforms_applied(self):
        plain = digraph_spec().build_graph()
        bad = digraph_spec(graph_transforms=("with-dead-end-vertex",)).build_graph()
        assert bad.num_vertices == plain.num_vertices + 1


class TestExecution:
    def test_record_matches_direct_run(self):
        spec = digraph_spec()
        record = execute_spec(spec)
        direct = run_protocol(
            random_digraph(12, seed=3), GeneralBroadcastProtocol()
        )
        assert record.terminated and direct.terminated
        assert record.outcome == direct.outcome.value
        assert record.metrics["total_bits"] == direct.metrics.total_bits
        assert record.metrics["total_messages"] == direct.metrics.total_messages
        assert record.num_edges == spec.build_graph().num_edges

    def test_record_round_trips_through_json(self):
        record = execute_spec(digraph_spec())
        clone = RunRecord.from_json(record.to_json())
        assert clone == record
        assert clone.spec == record.spec

    def test_comparable_dict_strips_timing(self):
        record = execute_spec(digraph_spec())
        payload = record.comparable_dict()
        for field in TIMING_FIELDS:
            assert field not in payload

    def test_execute_spec_full_exposes_states_and_network(self):
        record, result, network = execute_spec_full(digraph_spec())
        assert record.terminated
        assert result.states  # white-box access preserved
        assert network.num_edges == record.num_edges

    def test_synchronous_engine(self):
        spec = RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 20},
            protocol="tree-broadcast",
            engine="synchronous",
            seed=0,
        )
        record = execute_spec(spec)
        direct = run_protocol_synchronous(
            spec.build_graph(), spec.build_protocol()
        )
        assert record.terminated
        assert record.metrics["termination_round"] == direct.termination_round
        assert record.metrics["rounds"] == direct.rounds

    def test_dead_end_transform_blocks_termination(self):
        record = execute_spec(
            digraph_spec(graph_transforms=("with-dead-end-vertex",))
        )
        assert not record.terminated
        assert record.outcome == "quiescent-without-termination"

    def test_spec_run_shorthand(self):
        record = digraph_spec().run()
        assert isinstance(record, RunRecord)
        assert record.terminated
