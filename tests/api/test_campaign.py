"""Tests for the campaign layer: ExperimentSpec grids + CampaignRunner."""

import json

import pytest

from repro.api import (
    AGGREGATORS,
    EXPERIMENTS,
    CampaignRunner,
    DriverExperiment,
    ExperimentSpec,
    SpecError,
    ensure_registered,
    run_experiment,
)


def demo_spec(**overrides) -> ExperimentSpec:
    payload = dict(
        name="demo",
        title="demo sweep",
        base={"graph": "random-grounded-tree", "protocol": "tree-broadcast"},
        axes={"graph_params.num_internal": [8, 12], "seed": [0, 1, 2]},
        aggregator="min-mean-max",
        aggregator_params={"metric": "total_bits"},
        scales={"quick": {"seed": [0]}},
    )
    payload.update(overrides)
    return ExperimentSpec(**payload)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = demo_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = demo_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_every_registered_grid_round_trips(self):
        ensure_registered()
        for name in EXPERIMENTS.names():
            experiment = EXPERIMENTS.get(name)
            if isinstance(experiment, ExperimentSpec):
                assert ExperimentSpec.from_dict(experiment.to_dict()) == experiment

    def test_unknown_field_rejected(self):
        payload = demo_spec().to_dict()
        payload["gird"] = {}
        with pytest.raises(SpecError, match="unknown experiment field"):
            ExperimentSpec.from_dict(payload)

    def test_title_not_part_of_identity(self):
        a = demo_spec(title="one")
        b = demo_spec(title="two")
        assert a.experiment_id == b.experiment_id
        assert a != b  # equality still sees the title; the id does not

    def test_tuple_axes_normalise_to_lists(self):
        spec = demo_spec(axes={"seed": (0, 1)})
        assert spec.axes == {"seed": [0, 1]}


class TestValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="non-empty list"):
            demo_spec(axes={"seed": []}, scales={})

    def test_patch_axis_values_must_be_dicts(self):
        with pytest.raises(SpecError, match="patch axis"):
            demo_spec(axes={"@workload": [1, 2]}, scales={})

    def test_scale_overriding_unknown_axis_rejected(self):
        with pytest.raises(SpecError, match="unknown axes"):
            demo_spec(scales={"quick": {"nope": [1]}})

    def test_unknown_scale_rejected_at_expand(self):
        with pytest.raises(SpecError, match="no scale"):
            demo_spec().expand(scale="galactic")


class TestExpansion:
    def test_deterministic_order(self):
        spec = demo_spec()
        first = spec.expand()
        second = spec.expand()
        assert first == second
        assert [s.spec_id for s in first] == [s.spec_id for s in second]

    def test_first_axis_outermost(self):
        spec = demo_spec()
        runs = [(s.graph_params["num_internal"], s.seed) for s in spec.expand()]
        assert runs == [(n, seed) for n in (8, 12) for seed in (0, 1, 2)]

    def test_expansion_order_survives_json(self):
        spec = demo_spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert [s.spec_id for s in clone.expand()] == [
            s.spec_id for s in spec.expand()
        ]

    def test_scale_overrides_axes(self):
        specs = demo_spec().expand(scale="quick")
        assert [s.seed for s in specs] == [0, 0]

    def test_patch_axis_sets_fields_together(self):
        spec = demo_spec(
            axes={
                "@workload": [
                    {"graph": "random-dag", "protocol": "dag-broadcast"},
                    {"graph": "random-digraph", "protocol": "general-broadcast"},
                ],
                "seed": [7],
            },
            scales={},
        )
        expanded = spec.expand()
        assert [(s.graph, s.protocol, s.seed) for s in expanded] == [
            ("random-dag", "dag-broadcast", 7),
            ("random-digraph", "general-broadcast", 7),
        ]

    def test_engine_override(self):
        specs = demo_spec().expand(engine="fastpath")
        assert all(s.engine == "fastpath" for s in specs)

    def test_engine_locked_ignores_override(self):
        spec = demo_spec(engine_locked=True, base={
            "graph": "random-grounded-tree",
            "protocol": "tree-broadcast",
            "engine": "synchronous",
        })
        specs = spec.expand(engine="fastpath")
        assert all(s.engine == "synchronous" for s in specs)

    def test_engine_locked_result_reports_no_applied_engine(self):
        spec = demo_spec(
            engine_locked=True,
            scales={},
            axes={"graph_params.num_internal": [8], "seed": [0]},
        )
        result = CampaignRunner(engine="fastpath", parallel=False).run(spec)
        assert result.engine == "fastpath"
        assert result.applied_engine is None
        unlocked = CampaignRunner(engine="fastpath", parallel=False).run(
            demo_spec(scales={}, axes={"graph_params.num_internal": [8], "seed": [0]})
        )
        assert unlocked.applied_engine == "fastpath"

    def test_with_overrides_replaces_axes_and_patches_base(self):
        derived = demo_spec().with_overrides(
            axes={"seed": [9]}, base={"graph_params.num_internal": 5}
        )
        specs = derived.expand()
        # The size axis still overrides the patched base value; the seed
        # axis was replaced wholesale.
        assert {s.seed for s in specs} == {9}
        assert derived.base["graph_params"]["num_internal"] == 5


class TestCampaignRunner:
    def test_rows_via_named_aggregator(self):
        result = CampaignRunner(parallel=False).run(demo_spec())
        assert [row["n_internal"] for row in result.rows] == [8, 12]
        for row in result.rows:
            assert row["runs"] == 3
            assert row["total_bits_min"] <= row["total_bits_mean"] <= row["total_bits_max"]

    def test_runs_registered_experiment_by_name(self):
        result = run_experiment("e05", scale="quick", parallel=False)
        assert result.stats.total == len(result.records) == len(result.rows)

    def test_resume_is_zero_reexecution(self, tmp_path):
        runner = CampaignRunner(parallel=False, out_dir=str(tmp_path))
        first = runner.run(demo_spec())
        assert first.stats.executed == 6 and first.stats.reused == 0
        again = CampaignRunner(parallel=False, out_dir=str(tmp_path)).run(demo_spec())
        assert again.stats.executed == 0 and again.stats.reused == 6
        assert [r.comparable_dict() for r in again.records] == [
            r.comparable_dict() for r in first.records
        ]

    def test_resume_from_partial_artifacts(self, tmp_path):
        runner = CampaignRunner(parallel=False, out_dir=str(tmp_path))
        runner.run(demo_spec())
        runs_path = tmp_path / "demo.runs.jsonl"
        lines = runs_path.read_text(encoding="utf-8").splitlines()
        # Simulate an interrupted campaign: drop two completed runs.
        runs_path.write_text("\n".join(lines[:-2]) + "\n", encoding="utf-8")
        resumed = CampaignRunner(parallel=False, out_dir=str(tmp_path)).run(demo_spec())
        assert resumed.stats.executed == 2
        assert resumed.stats.reused == 4

    def test_no_resume_reexecutes(self, tmp_path):
        CampaignRunner(parallel=False, out_dir=str(tmp_path)).run(demo_spec())
        rerun = CampaignRunner(
            parallel=False, out_dir=str(tmp_path), resume=False
        ).run(demo_spec())
        assert rerun.stats.executed == 6

    def test_rows_artifact_written(self, tmp_path):
        CampaignRunner(parallel=False, out_dir=str(tmp_path)).run(demo_spec())
        payload = json.loads((tmp_path / "demo.rows.json").read_text(encoding="utf-8"))
        assert payload["experiment"]["name"] == "demo"
        assert len(payload["rows"]) == 2
        assert payload["stats"]["executed"] == 6

    def test_unknown_aggregator_fails(self):
        spec = demo_spec(aggregator="no-such-reduction")
        with pytest.raises(KeyError):
            CampaignRunner(parallel=False).run(spec)


class TestRegisteredExperiments:
    def test_all_nineteen_registered(self):
        ensure_registered()
        assert set(EXPERIMENTS.names()) == {f"e{i:02d}" for i in range(1, 20)}

    def test_grid_campaigns_expand(self):
        ensure_registered()
        for name in EXPERIMENTS.names():
            experiment = EXPERIMENTS.get(name)
            if isinstance(experiment, ExperimentSpec):
                assert experiment.expand(), name
                if "quick" in experiment.scales:
                    assert experiment.expand(scale="quick"), name

    def test_aggregators_registered(self):
        ensure_registered()
        for name in EXPERIMENTS.names():
            experiment = EXPERIMENTS.get(name)
            if isinstance(experiment, ExperimentSpec):
                assert experiment.aggregator in AGGREGATORS

    def test_driver_experiments_resolve(self):
        ensure_registered()
        drivers = [
            EXPERIMENTS.get(name)
            for name in EXPERIMENTS.names()
            if isinstance(EXPERIMENTS.get(name), DriverExperiment)
        ]
        assert {d.name for d in drivers} == {"e02", "e04", "e07", "e14", "e19"}
        for driver in drivers:
            assert callable(driver.resolve())

    def test_white_box_campaign_runs(self):
        result = run_experiment("e06", scale="quick", parallel=False)
        assert result.rows and all(row["labels_disjoint"] for row in result.rows)
        # white-box campaigns always execute (no resumable record cache)
        assert result.stats.reused == 0

    def test_driver_experiment_quick_scale(self):
        result = run_experiment("e02", scale="quick")
        assert [row["n"] for row in result.rows] == [4, 8, 16]
        assert result.stats.total == 0 and result.records == []
