"""The :class:`~repro.api.engines.EngineInfo` capability contract.

Engines are no longer bare callables: every ``ENGINES`` entry is an
``EngineInfo`` describing what the engine can do (``run_one`` always;
``run_many`` and fault injection optionally), and every consumer —
the spec validator, the batch runner's seed-grouping, ``repro
registry`` — reads those flags instead of hard-coding engine names.
These tests are registry-driven on purpose: registering a new engine
automatically subjects it to the same contract.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import ENGINES, RunSpec, SpecError, ensure_registered
from repro.api.engines import EngineInfo, fault_capable_engines

ensure_registered()


class TestContract:
    def test_every_registered_engine_is_an_engine_info(self):
        for name in ENGINES.names():
            info = ENGINES.get(name)
            assert isinstance(info, EngineInfo), name
            assert info.name == name
            assert callable(info.run_one)

    def test_capabilities_tags_reflect_flags(self):
        for name in ENGINES.names():
            info = ENGINES.get(name)
            tags = info.capabilities()
            assert "run_one" in tags
            assert ("run_many" in tags) == (info.run_many is not None)
            assert ("faults" in tags) == info.supports_faults
            assert ("batching" in tags) == info.supports_batching

    def test_batching_requires_run_many(self):
        with pytest.raises(ValueError):
            EngineInfo(name="broken", run_one=lambda *a: None, supports_batching=True)

    def test_expected_capability_matrix(self):
        """The shipped engines' flags (a drift alarm, not a mechanism)."""
        flags = {
            name: (ENGINES.get(name).supports_faults, ENGINES.get(name).supports_batching)
            for name in ENGINES.names()
        }
        assert flags == {
            "async": (True, False),
            "fastpath": (True, False),
            "synchronous": (False, False),
            "batch": (False, True),
        }

    def test_fault_capable_engines_lists_only_fault_engines(self):
        capable = fault_capable_engines()
        assert set(capable) == {
            name for name in ENGINES.names() if ENGINES.get(name).supports_faults
        }


class TestSpecValidation:
    def _faulty_spec(self, engine):
        return RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 4},
            protocol="tree-broadcast",
            engine=engine,
            faults={"drop_probability": 0.1},
        )

    def test_faults_rejected_on_every_non_fault_engine(self):
        for name in ENGINES.names():
            if ENGINES.get(name).supports_faults:
                self._faulty_spec(name)  # must validate
            else:
                with pytest.raises(SpecError, match="does not support fault"):
                    self._faulty_spec(name)

    def test_error_names_the_capable_engines(self):
        with pytest.raises(SpecError) as excinfo:
            self._faulty_spec("batch")
        for name in fault_capable_engines():
            assert name in str(excinfo.value)

    def test_replace_onto_batch_engine_revalidates(self):
        spec = self._faulty_spec("fastpath")
        with pytest.raises(SpecError):
            dataclasses.replace(spec, engine="batch")
