"""Fault-model wiring through the spec layer and the engines.

Three contracts:

* **Legacy stability** — ``faults=None`` specs hash to the spec_ids they
  had before the fault layer existed, so old resume files stay valid.
* **Engine equivalence** — a faulty run produces identical records under
  ``async`` and ``fastpath`` (the injector hooks fire at the same call
  sites in both), exactly like the fault-free differential contract.
* **Determinism** — a faulty run is exactly reproducible from
  ``(spec, seed)``.
"""

import pytest

from repro.api import RunRecord, RunSpec, SpecError, execute_spec
from repro.network.faults import FaultSpec


def faulty_spec(engine="async", **fault_fields):
    return RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 12},
        protocol="general-broadcast",
        engine=engine,
        seed=2,
        faults=fault_fields,
    )


FAULT_MODELS = [
    {"drop_probability": 0.15},
    {"duplicate_probability": 0.2},
    {"delay_probability": 0.25},
    {"crashes": [{"vertex": 4, "step": 40}]},
    {"churn": [{"vertex": 5, "leave_step": 10, "rejoin_step": 80}]},
    {"adversary": "starve-one-edge"},
    {"adversary": "oldest-last"},
    {
        "drop_probability": 0.05,
        "duplicate_probability": 0.05,
        "delay_probability": 0.1,
        "crashes": [{"vertex": 3, "step": 60}],
        "churn": [{"vertex": 6, "leave_step": 15, "rejoin_step": 70}],
    },
]


class TestSpecIdStability:
    def test_legacy_spec_ids_unchanged(self):
        """Hard-coded hashes computed before the faults field existed."""
        spec = RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 8},
            protocol="tree-broadcast",
            seed=3,
        )
        assert spec.spec_id == "8e8a0c79d7fb7005"
        spec = RunSpec(
            graph="random-digraph",
            graph_params={"num_internal": 10},
            protocol="general-broadcast",
            engine="fastpath",
            seed=1,
        )
        assert spec.spec_id == "d84b04eb73bd596a"

    def test_payload_without_faults_key_parses(self):
        """Resume files written before the fault layer lack the key."""
        payload = RunSpec(graph="g", protocol="p").to_dict()
        del payload["faults"]
        assert RunSpec.from_dict(payload) == RunSpec(graph="g", protocol="p")

    def test_faulty_spec_gets_distinct_id(self):
        clean = RunSpec(graph="g", protocol="p")
        faulty = RunSpec(graph="g", protocol="p", faults={"drop_probability": 0.1})
        assert clean.spec_id != faulty.spec_id


class TestSpecRoundTrip:
    def test_faults_normalise_to_fault_spec(self):
        spec = faulty_spec(drop_probability=0.1)
        assert isinstance(spec.faults, FaultSpec)
        assert spec.faults.drop_probability == 0.1

    @pytest.mark.parametrize("faults", FAULT_MODELS)
    def test_json_round_trip(self, faults):
        spec = faulty_spec(**faults)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_fault_spec_object_accepted(self):
        spec = RunSpec(graph="g", protocol="p", faults=FaultSpec(drop_probability=0.5))
        assert spec == RunSpec(graph="g", protocol="p", faults={"drop_probability": 0.5})

    def test_invalid_payload_is_spec_error(self):
        with pytest.raises(SpecError, match="drop_probability"):
            RunSpec(graph="g", protocol="p", faults={"drop_probability": 2.0})
        with pytest.raises(SpecError, match="faults"):
            RunSpec(graph="g", protocol="p", faults="lossy")

    def test_synchronous_engine_rejects_faults(self):
        with pytest.raises(SpecError, match="does not support fault injection"):
            RunSpec(
                graph="g", protocol="p", engine="synchronous", faults={"drop_probability": 0.1}
            )


def _comparable(record: RunRecord) -> dict:
    payload = record.comparable_dict()
    payload["spec"].pop("engine")
    return payload


class TestEngineEquivalence:
    @pytest.mark.parametrize("faults", FAULT_MODELS)
    def test_async_fastpath_identical(self, faults):
        async_record = execute_spec(faulty_spec(engine="async", **faults))
        fast_record = execute_spec(faulty_spec(engine="fastpath", **faults))
        assert _comparable(async_record) == _comparable(fast_record)

    def test_equivalence_with_trace_and_state_bits(self):
        base = dict(
            graph="random-digraph",
            graph_params={"num_internal": 8},
            protocol="general-broadcast",
            seed=1,
            record_trace=True,
            track_state_bits=True,
            faults={"drop_probability": 0.1, "delay_probability": 0.1},
        )
        async_record = execute_spec(RunSpec(engine="async", **base))
        fast_record = execute_spec(RunSpec(engine="fastpath", **base))
        assert _comparable(async_record) == _comparable(fast_record)

    def test_fault_free_records_have_no_fault_counters(self):
        """The fault-free path is untouched: no fault keys leak into metrics."""
        spec = RunSpec(
            graph="random-digraph",
            graph_params={"num_internal": 8},
            protocol="general-broadcast",
            engine="fastpath",
            seed=0,
        )
        record = execute_spec(spec)
        assert not any(key.startswith("fault_") for key in record.metrics)

    def test_noop_fault_model_matches_fault_free_run(self):
        """An all-default FaultSpec changes counters, never simulation results."""
        base = dict(
            graph="random-digraph",
            graph_params={"num_internal": 10},
            protocol="general-broadcast",
            seed=4,
        )
        clean = execute_spec(RunSpec(engine="async", **base))
        for engine in ("async", "fastpath"):
            noop = execute_spec(RunSpec(engine=engine, faults={}, **base))
            clean_metrics = dict(clean.metrics)
            noop_metrics = {
                k: v for k, v in noop.metrics.items() if not k.startswith("fault_")
            }
            assert noop_metrics == clean_metrics
            assert noop.outcome == clean.outcome


class TestDeterminismAndCounters:
    @pytest.mark.parametrize("engine", ["async", "fastpath"])
    def test_faulty_runs_reproducible(self, engine):
        spec = faulty_spec(
            engine=engine,
            drop_probability=0.1,
            duplicate_probability=0.1,
            delay_probability=0.1,
        )
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert first.comparable_dict() == second.comparable_dict()

    def test_counters_present_in_record(self):
        record = execute_spec(faulty_spec(drop_probability=0.3))
        for key in (
            "fault_dropped",
            "fault_duplicated",
            "fault_delayed",
            "fault_crashed",
            "fault_churned",
            "fault_rejoined",
        ):
            assert key in record.metrics
        assert record.metrics["fault_dropped"] > 0

    def test_record_json_round_trip(self):
        record = execute_spec(faulty_spec(drop_probability=0.2))
        assert RunRecord.from_json(record.to_json()) == record
