"""Docstring audit of the public API surface, with doctest enforcement.

Two contracts:

* every public name exported from :mod:`repro.api` (and the fault-model
  classes in :mod:`repro.network.faults`) carries a docstring, and so
  does every public method of the core user-facing classes;
* the doctests embedded in those docstrings pass — examples in the API
  reference are executable, exactly like the prose-doc snippets.
"""

import doctest
import inspect
import typing

import pytest

import repro.api as api
import repro.api.aggregators
import repro.api.campaign
import repro.api.registry
import repro.api.runner
import repro.api.spec
import repro.network.faults
from repro.api import (
    BatchRunner,
    CampaignRunner,
    ExperimentSpec,
    Registry,
    RunRecord,
    RunSpec,
)
from repro.network.faults import ChurnFault, CrashFault, FaultInjector, FaultSpec

#: Classes whose public methods are under the docstring contract.
AUDITED_CLASSES = [
    RunSpec,
    RunRecord,
    BatchRunner,
    ExperimentSpec,
    CampaignRunner,
    Registry,
    FaultSpec,
    CrashFault,
    ChurnFault,
    FaultInjector,
]

#: Modules whose doctests must pass.
DOCTEST_MODULES = [
    repro.api.spec,
    repro.api.registry,
    repro.api.runner,
    repro.api.campaign,
    repro.api.aggregators,
    repro.network.faults,
]


class TestPublicSurfaceDocstrings:
    @pytest.mark.parametrize("name", sorted(api.__all__))
    def test_exported_name_documented(self, name):
        obj = getattr(api, name)
        if (
            inspect.ismodule(obj)
            or typing.get_origin(obj) is not None  # typing aliases (MetricValue)
            or not (inspect.isclass(obj) or callable(obj))
        ):
            pytest.skip(f"{name} is a registry instance, alias or constant")
        assert (obj.__doc__ or "").strip(), f"repro.api.{name} lacks a docstring"

    @pytest.mark.parametrize(
        "cls", AUDITED_CLASSES, ids=[cls.__name__ for cls in AUDITED_CLASSES]
    )
    def test_public_methods_documented(self, cls):
        undocumented = []
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            func = member
            if isinstance(member, (staticmethod, classmethod)):
                func = member.__func__
            elif isinstance(member, property):
                func = member.fget
            elif not callable(member):
                continue
            if not (getattr(func, "__doc__", "") or "").strip():
                undocumented.append(name)
        assert not undocumented, f"{cls.__name__} methods lack docstrings: {undocumented}"

    def test_registries_documented(self):
        for kind, registry in api.all_registries().items():
            assert registry.kind, kind  # named, hence self-describing in errors


class TestDoctests:
    @pytest.mark.parametrize(
        "module", DOCTEST_MODULES, ids=[m.__name__ for m in DOCTEST_MODULES]
    )
    def test_module_doctests_pass(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"

    def test_doctests_exist_where_promised(self):
        """The audit promised doctests on the core spec classes."""
        finder = doctest.DocTestFinder()
        for cls in (RunSpec, ExperimentSpec, FaultSpec, Registry):
            tests = [t for t in finder.find(cls) if t.examples]
            assert tests, f"{cls.__name__} lost its doctest examples"
