"""Execute the Python code blocks in README.md and docs/*.md.

Documentation that cannot run is documentation that lies.  This suite
extracts every fenced ```python block from the prose docs and holds it to
a two-tier contract:

* every block must at least **compile** (no pseudo-Python in the docs);
* every *self-contained* block — one whose first statement is an import,
  which is the convention the docs follow for runnable examples — is
  **executed** in a fresh namespace inside a temporary working directory
  (snippets may write artifact files), and must finish without raising.

CI runs this as the docs job; it is also part of tier 1, so a PR that
breaks an example fails immediately.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The prose documents whose code blocks are under contract.
DOCUMENTS = [
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/FAULTS.md",
    "docs/SCHEDULES.md",
    "docs/STORE.md",
    "docs/TRACING.md",
]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks():
    """Every ```python block as (param-id, source) pairs."""
    blocks = []
    for relative in DOCUMENTS:
        path = REPO_ROOT / relative
        if not path.exists():
            continue
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(_FENCE.finditer(text)):
            blocks.append((f"{relative}[{index}]", match.group(1)))
    return blocks


def _is_self_contained(source: str) -> bool:
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        return stripped.startswith(("import ", "from "))
    return False


BLOCKS = python_blocks()


def test_documents_exist_and_have_snippets():
    for relative in DOCUMENTS:
        assert (REPO_ROOT / relative).exists(), f"{relative} is missing"
    assert len(BLOCKS) >= 5, "the docs lost their runnable examples"
    assert any(_is_self_contained(source) for _, source in BLOCKS)


@pytest.mark.parametrize(
    "block_id,source", BLOCKS, ids=[block_id for block_id, _ in BLOCKS]
)
def test_snippet_compiles(block_id, source):
    compile(source, block_id, "exec")


@pytest.mark.parametrize(
    "block_id,source",
    [(b, s) for b, s in BLOCKS if _is_self_contained(s)],
    ids=[b for b, s in BLOCKS if _is_self_contained(s)],
)
def test_snippet_executes(block_id, source, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippets may write artifact files
    namespace = {"__name__": "__doc_snippet__"}
    exec(compile(source, block_id, "exec"), namespace)
