"""The experiment service: payload validation, jobs, HTTP round-trips, cache."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ExperimentService, JobError, make_server, serve_forever
from repro.store import ResultStore


@pytest.fixture()
def service(tmp_path):
    service = ExperimentService(
        store=ResultStore(str(tmp_path / "store")),
        out_dir=str(tmp_path / "artifacts"),
        parallel=False,
    )
    yield service
    service.close()


@pytest.fixture()
def server(service):
    server = make_server("127.0.0.1", 0, service)
    serve_forever(server, ready_line=False, in_thread=True)
    yield server
    server.shutdown()


def base_url(server):
    host, port = server.server_address[0], server.server_address[1]
    return f"http://{host}:{port}"


def request(server, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        base_url(server) + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestPayloadValidation:
    def test_unknown_field(self, service):
        with pytest.raises(JobError, match="unknown payload field"):
            service.submit({"experimnt": "e01"})

    def test_unknown_experiment(self, service):
        with pytest.raises(JobError, match="unknown experiment"):
            service.submit({"experiment": "e99"})

    def test_unknown_engine(self, service):
        with pytest.raises(JobError, match="unknown engine"):
            service.submit({"experiment": "e01", "engine": "warp"})

    def test_unknown_scale(self, service):
        with pytest.raises(JobError, match="no scale"):
            service.submit({"experiment": "e01", "scale": "galactic"})

    def test_needs_exactly_one_of_experiments_or_spec(self, service):
        with pytest.raises(JobError, match="exactly one"):
            service.submit({})
        with pytest.raises(JobError, match="exactly one"):
            service.submit({"experiment": "e01", "spec": {"name": "x"}})

    def test_invalid_inline_spec(self, service):
        with pytest.raises(JobError, match="invalid experiment spec"):
            service.submit({"spec": {"name": "x", "bogus_field": 1}})

    def test_non_dict_payload(self, service):
        with pytest.raises(JobError, match="JSON object"):
            service.submit(["e01"])


class TestJobLifecycle:
    def test_submit_run_result(self, service):
        job, created = service.submit({"experiment": "e01", "quick": True})
        assert created
        assert job.wait(timeout=120)
        assert job.state == "completed"
        snap = job.snapshot()
        assert snap["progress"]["done"] == snap["progress"]["total"] > 0
        assert snap["summary"]["executed"] == snap["summary"]["total_specs"]
        result = job.result_payload()
        assert result["experiments"][0]["name"] == "e01"
        assert result["experiments"][0]["rows"]

    def test_active_duplicate_payload_dedupes(self, service):
        job1, created1 = service.submit({"experiment": "e01", "quick": True})
        job2, created2 = service.submit({"experiment": "e01", "quick": True})
        # either the first job is still active (same job returned) or it
        # finished before the resubmit (a fresh job); both are correct
        if not created2:
            assert job2.id == job1.id
        assert job1.wait(timeout=120) and job2.wait(timeout=120)

    def test_completed_resubmit_is_new_job_served_from_store(self, service):
        job1, _ = service.submit({"experiment": "e01", "quick": True})
        assert job1.wait(timeout=120) and job1.state == "completed"
        job2, created = service.submit({"experiment": "e01", "quick": True})
        assert created and job2.id != job1.id
        assert job2.wait(timeout=120) and job2.state == "completed"
        summary = job2.snapshot()["summary"]
        assert summary["executed"] == 0
        assert summary["store_hits"] == summary["total_specs"] > 0
        assert summary["store_hit_rate"] == 1.0
        # rows identical across cold and warm jobs
        assert job2.result_payload()["experiments"] == (
            job1.result_payload()["experiments"]
        )

    def test_inline_spec_payload(self, service):
        job, _ = service.submit(
            {
                "spec": {
                    "name": "inline-sweep",
                    "base": {
                        "graph": "random-grounded-tree",
                        "graph_params": {"num_internal": 6},
                        "protocol": "tree-broadcast",
                    },
                    "axes": {"seed": [0, 1]},
                }
            }
        )
        assert job.wait(timeout=120) and job.state == "completed"
        assert job.snapshot()["summary"]["total_specs"] == 2

    def test_watch_ends_with_terminal_snapshot(self, service):
        job, _ = service.submit({"experiment": "e01", "quick": True})
        snapshots = list(service.watch(job.id))
        assert snapshots[-1]["state"] == "completed"
        versions = [snap["version"] for snap in snapshots]
        assert versions == sorted(versions)


class TestHttpRoundTrip:
    def test_full_round_trip(self, server):
        status, health = request(server, "GET", "/healthz")
        assert status == 200 and health["ok"]

        status, snap = request(
            server, "POST", "/experiments", {"experiment": "e01", "quick": True}
        )
        assert status == 202 and snap["created"]
        job_id = snap["job"]

        # the watch stream is close-delimited NDJSON ending in the terminal state
        with urllib.request.urlopen(
            base_url(server) + f"/experiments/{job_id}?watch=1", timeout=120
        ) as resp:
            lines = [json.loads(line) for line in resp]
        assert lines[-1]["state"] == "completed"

        status, result = request(server, "GET", f"/experiments/{job_id}/result")
        assert status == 200
        assert result["experiments"][0]["rows"]

        status, listing = request(server, "GET", "/experiments")
        assert status == 200 and len(listing["jobs"]) == 1

        status, stats = request(server, "GET", "/store/stats")
        assert status == 200 and stats["records"] > 0

    def test_resubmit_served_from_cache(self, server):
        _, snap1 = request(
            server, "POST", "/experiments", {"experiment": "e01", "quick": True}
        )
        with urllib.request.urlopen(
            base_url(server) + f"/experiments/{snap1['job']}?watch=1", timeout=120
        ) as resp:
            resp.read()  # drain to completion
        status, snap2 = request(
            server, "POST", "/experiments", {"experiment": "e01", "quick": True}
        )
        assert status == 202
        with urllib.request.urlopen(
            base_url(server) + f"/experiments/{snap2['job']}?watch=1", timeout=120
        ) as resp:
            final = [json.loads(line) for line in resp][-1]
        assert final["state"] == "completed"
        assert final["summary"]["executed"] == 0
        assert final["summary"]["store_hit_rate"] == 1.0

    def test_error_statuses(self, server):
        assert request(server, "POST", "/experiments", {"nope": 1})[0] == 400
        assert request(server, "GET", "/experiments/zzz")[0] == 404
        assert request(server, "GET", "/experiments/zzz/result")[0] == 404
        assert request(server, "GET", "/nowhere")[0] == 404
        assert request(server, "POST", "/nowhere", {})[0] == 404

    def test_result_before_completion_is_409(self, service, server):
        # submit a job and probe /result in the narrow window before it
        # finishes; if it already finished, the 200 path is equally valid —
        # assert only that the contract's statuses appear
        _, snap = request(
            server, "POST", "/experiments", {"experiment": "e01", "quick": True}
        )
        status, body = request(server, "GET", f"/experiments/{snap['job']}/result")
        assert status in (200, 409)
        if status == 409:
            assert "not completed" in body["error"]
        service.get(snap["job"]).wait(timeout=120)
