"""Tests for the scaling fits and the table renderer."""

import math

import pytest

from repro.analysis.report import format_value, render_table
from repro.analysis.scaling import (
    bound_ratios,
    is_flat,
    loglog_slope,
    ratio_band,
    semilog_slope,
)


class TestSlopes:
    def test_loglog_recovers_power(self):
        sizes = [10, 20, 40, 80, 160]
        for k in (1, 2, 3):
            costs = [s ** k for s in sizes]
            assert loglog_slope(sizes, costs) == pytest.approx(k, abs=0.01)

    def test_loglog_n_log_n_slightly_above_one(self):
        sizes = [100, 200, 400, 800]
        costs = [s * math.log2(s) for s in sizes]
        slope = loglog_slope(sizes, costs)
        assert 1.0 < slope < 1.3

    def test_semilog_recovers_exponential(self):
        sizes = [2, 4, 6, 8]
        costs = [2 ** s for s in sizes]
        assert semilog_slope(sizes, costs) == pytest.approx(1.0, abs=0.01)

    def test_semilog_small_for_linear(self):
        sizes = [10, 20, 40, 80]
        costs = [7 * s for s in sizes]
        assert semilog_slope(sizes, costs) < 0.2

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            loglog_slope([5, 5], [1, 2])


class TestRatios:
    def test_bound_ratios(self):
        assert bound_ratios([10, 20], [5, 10]) == [2.0, 2.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bound_ratios([1], [1, 2])

    def test_ratio_band(self):
        assert ratio_band([0.5, 2.0, 1.0]) == (0.5, 2.0)

    def test_is_flat(self):
        assert is_flat([1.0, 1.5, 2.0])
        assert not is_flat([0.1, 10.0])
        assert not is_flat([0.0, 1.0])  # non-positive ratios are never flat


class TestRenderTable:
    def test_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": True}]
        text = render_table(rows, title="T")
        assert text.startswith("T")
        assert "a" in text and "b" in text
        assert "yes" in text
        assert "2.500" in text

    def test_empty(self):
        assert "(no rows)" in render_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(0.0) == "0"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value("text") == "text"
