"""Tests for the paper-figure artifact generator."""

from repro.analysis.figures import generate_figures, paper_figures
from repro.graphs.properties import is_dag, is_grounded_tree


class TestPaperFigures:
    def test_all_figures_present(self):
        figures = paper_figures()
        assert set(figures) == {
            "figure1_cut_surgery",
            "figure4_skeleton_tree",
            "figure5_caterpillar",
            "figure6a_full_tree",
            "figure6b_pruned_tree",
        }

    def test_figure_structures(self):
        figures = paper_figures()
        assert is_grounded_tree(figures["figure5_caterpillar"][1])
        assert is_grounded_tree(figures["figure6a_full_tree"][1])
        assert is_grounded_tree(figures["figure6b_pruned_tree"][1])
        assert is_dag(figures["figure4_skeleton_tree"][1])
        assert is_grounded_tree(figures["figure1_cut_surgery"][1])

    def test_captions_nonempty(self):
        for caption, _ in paper_figures().values():
            assert caption.startswith("Figure")


class TestGenerate:
    def test_writes_dot_files(self, tmp_path):
        written = generate_figures(tmp_path)
        assert len(written) == 5
        for name, path in written.items():
            text = path.read_text(encoding="utf-8")
            assert text.startswith("// Figure")
            assert "digraph" in text
            assert name in text

    def test_idempotent(self, tmp_path):
        first = generate_figures(tmp_path)
        second = generate_figures(tmp_path)
        assert first.keys() == second.keys()
