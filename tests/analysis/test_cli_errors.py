"""CLI error paths: every user mistake is a clear one-line error + exit 1.

The contract under test: unknown experiment names, malformed ``--spec``
files and invalid ``faults=`` payloads never escape as tracebacks — they
become a single-line ``SystemExit`` message (argparse maps a string code
to exit status 1).
"""

import io
import json

import pytest

from repro.cli import main


def _run_expecting_error(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv, stream=io.StringIO())
    code = excinfo.value.code
    # a string code means "print this and exit 1" — assert it is one line
    assert isinstance(code, str), f"expected a message, got exit code {code!r}"
    assert "\n" not in code, f"error message spans lines: {code!r}"
    return code


class TestUnknownExperiment:
    def test_run_unknown_id(self):
        message = _run_expecting_error(["run", "E99"])
        assert "unknown experiment" in message

    def test_experiment_unknown_name(self):
        message = _run_expecting_error(["experiment", "e99"])
        assert "unknown experiment" in message
        assert "e17" in message  # the listing helps the user recover

    def test_experiment_unknown_scale(self):
        message = _run_expecting_error(["experiment", "e17", "--scale", "nope"])
        assert "no scale" in message


class TestMalformedSpecFile:
    def test_run_spec_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        message = _run_expecting_error(["run", "--spec", str(path)])
        assert "malformed JSON" in message

    def test_batch_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"graph": "g",]', encoding="utf-8")
        message = _run_expecting_error(["batch", str(path)])
        assert "malformed JSON" in message

    def test_run_spec_missing_file(self, tmp_path):
        message = _run_expecting_error(["run", "--spec", str(tmp_path / "nope.json")])
        assert "cannot read" in message

    def test_run_spec_unknown_field(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"graph": "g", "protocol": "p", "graf_params": {}}),
            encoding="utf-8",
        )
        message = _run_expecting_error(["run", "--spec", str(path)])
        assert "invalid spec" in message

    def test_experiment_spec_bad_json(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text("[[[", encoding="utf-8")
        message = _run_expecting_error(["experiment", "--spec", str(path)])
        assert "malformed JSON" in message


class TestInvalidFaultsPayload:
    def _write_spec(self, tmp_path, faults):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "graph": "random-grounded-tree",
                    "graph_params": {"num_internal": 4},
                    "protocol": "tree-broadcast",
                    "faults": faults,
                }
            ),
            encoding="utf-8",
        )
        return str(path)

    def test_bad_probability(self, tmp_path):
        path = self._write_spec(tmp_path, {"drop_probability": 2.0})
        message = _run_expecting_error(["run", "--spec", path])
        assert "drop_probability" in message

    def test_unknown_fault_field(self, tmp_path):
        path = self._write_spec(tmp_path, {"drop_rate": 0.5})
        message = _run_expecting_error(["run", "--spec", path])
        assert "unknown fault field" in message

    def test_bad_churn_interval(self, tmp_path):
        path = self._write_spec(
            tmp_path, {"churn": [{"vertex": 2, "leave_step": 9, "rejoin_step": 4}]}
        )
        message = _run_expecting_error(["batch", path])
        assert "rejoin_step" in message

    def test_typoed_churn_entry_key(self, tmp_path):
        path = self._write_spec(tmp_path, {"churn": [{"vertex": 1, "leave": 5}]})
        message = _run_expecting_error(["run", "--spec", path])
        assert "invalid churn entry" in message

    def test_non_dict_crash_entry(self, tmp_path):
        path = self._write_spec(tmp_path, {"crashes": [3]})
        message = _run_expecting_error(["run", "--spec", path])
        assert "crashes entries must be dicts" in message

    def test_churn_not_a_list(self, tmp_path):
        path = self._write_spec(tmp_path, {"churn": 0.5})
        message = _run_expecting_error(["batch", path])
        assert "churn must be a sequence" in message

    def test_fault_vertex_out_of_range(self, tmp_path):
        # only detectable at execution time, once the graph is built —
        # still a one-line error, in both run and batch
        path = self._write_spec(
            tmp_path, {"churn": [{"vertex": 99, "leave_step": 5}]}
        )
        message = _run_expecting_error(["run", "--spec", path])
        assert "vertex 99" in message
        message = _run_expecting_error(["batch", path, "--serial"])
        assert "vertex 99" in message

    def test_unknown_adversary_name(self, tmp_path):
        path = self._write_spec(tmp_path, {"adversary": "starve-everything"})
        message = _run_expecting_error(["run", "--spec", path])
        assert "starve-everything" in message
        assert "starve-one-edge" in message  # the listing helps the user recover

    def test_adversary_edge_out_of_range(self, tmp_path):
        path = self._write_spec(
            tmp_path,
            {"adversary": "starve-one-edge", "adversary_params": {"edge_id": 9999}},
        )
        message = _run_expecting_error(["run", "--spec", path])
        assert "edge_id 9999" in message

    def test_bogus_adversary_params(self, tmp_path):
        path = self._write_spec(
            tmp_path, {"adversary": "starve-one-edge", "adversary_params": {"bogus": 1}}
        )
        message = _run_expecting_error(["run", "--spec", path])
        assert "adversary_params" in message

    def test_valid_faults_spec_runs(self, tmp_path):
        """Sanity: the same shape with a valid payload executes fine."""
        path = self._write_spec(tmp_path, {"drop_probability": 0.0})
        stream = io.StringIO()
        assert main(["run", "--spec", path], stream=stream) == 0
        assert "terminated" in stream.getvalue()


class TestTraceErrors:
    """Trace subcommand defects get the same one-line treatment."""

    def _write_spec(self, tmp_path, name="spec.json", **extra):
        path = tmp_path / name
        payload = {
            "graph": "random-grounded-tree",
            "graph_params": {"num_internal": 4},
            "protocol": "tree-broadcast",
            "seed": 3,
            **extra,
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def _record(self, tmp_path):
        spec = self._write_spec(tmp_path, trace="full")
        out = str(tmp_path / "t.rtrace")
        assert main(["trace", "record", spec, "-o", out], stream=io.StringIO()) == 0
        return out

    def test_missing_trace_file(self, tmp_path):
        for argv in (
            ["trace", "info", str(tmp_path / "nope.rtrace")],
            ["trace", "replay", str(tmp_path / "nope.rtrace")],
            ["trace", "profile", str(tmp_path / "nope.rtrace")],
        ):
            message = _run_expecting_error(argv)
            assert "cannot read trace file" in message

    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "fake.rtrace"
        path.write_bytes(b"definitely not a trace")
        message = _run_expecting_error(["trace", "info", str(path)])
        assert "invalid trace file" in message
        assert "bad magic" in message

    def test_future_format_version(self, tmp_path):
        recorded = self._record(tmp_path)
        data = bytearray(open(recorded, "rb").read())
        data[6:8] = (99).to_bytes(2, "little")  # bump the version field
        forged = tmp_path / "future.rtrace"
        forged.write_bytes(bytes(data))
        message = _run_expecting_error(["trace", "replay", str(forged)])
        assert "invalid trace file" in message
        assert "version 99" in message

    def test_replay_against_wrong_spec(self, tmp_path):
        recorded = self._record(tmp_path)
        other = self._write_spec(tmp_path, name="other.json", seed=4)
        message = _run_expecting_error(
            ["trace", "replay", recorded, "--spec", other]
        )
        assert "cannot replay" in message
        assert "workload" in message

    def test_trace_flag_without_spec_file(self):
        message = _run_expecting_error(["run", "E1", "--trace", "full"])
        assert "repro trace record" in message

    def test_bad_trace_policy(self, tmp_path):
        spec = self._write_spec(tmp_path)
        message = _run_expecting_error(
            ["run", "--spec", spec, "--trace", "sometimes"]
        )
        assert "cannot apply --trace" in message

    def test_trace_on_incapable_engine(self, tmp_path):
        spec = self._write_spec(tmp_path, engine="synchronous")
        message = _run_expecting_error(
            ["trace", "record", spec, "-o", str(tmp_path / "t.rtrace")]
        )
        assert "does not support trace capture" in message


class TestEngineCapability:
    """Capability mismatches (EngineInfo flags) get the one-line treatment."""

    def _write_spec(self, tmp_path, **extra):
        path = tmp_path / "spec.json"
        payload = {
            "graph": "random-grounded-tree",
            "graph_params": {"num_internal": 4},
            "protocol": "tree-broadcast",
            **extra,
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_faults_on_batch_engine_in_spec_file(self, tmp_path):
        path = self._write_spec(
            tmp_path, engine="batch", faults={"drop_probability": 0.1}
        )
        message = _run_expecting_error(["run", "--spec", path])
        assert "does not support fault injection" in message
        assert "fastpath" in message  # the capable engines help the user recover

    def test_faults_with_engine_override_flag(self, tmp_path):
        path = self._write_spec(tmp_path, faults={"drop_probability": 0.1})
        for argv in (
            ["run", "--spec", path, "--engine", "batch"],
            ["batch", path, "--engine", "batch", "--serial"],
        ):
            message = _run_expecting_error(argv)
            assert "does not support fault injection" in message

    def test_unknown_engine_override(self, tmp_path):
        path = self._write_spec(tmp_path)
        message = _run_expecting_error(["run", "--spec", path, "--engine", "bogus"])
        assert "unknown engine" in message
        assert "batch" in message  # the registry listing helps the user recover

    def test_engine_flag_rejected_for_legacy_experiment_ids(self):
        message = _run_expecting_error(["run", "E1", "--engine", "batch"])
        assert "repro experiment --engine" in message

    def test_engine_override_happy_path(self, tmp_path):
        path = self._write_spec(tmp_path)
        stream = io.StringIO()
        code = main(
            ["run", "--spec", path, "--engine", "batch", "--no-store"],
            stream=stream,
        )
        assert code == 0
        assert '"engine": "batch"' in stream.getvalue()
