"""Tests for the multi-seed sweep statistics."""

import pytest

from repro.analysis.report import render_table
from repro.analysis.sweeps import MetricSummary, summarize, sweep_metrics
from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import random_grounded_tree, with_dead_end_vertex


class TestSweep:
    def test_aggregates_all_metrics(self):
        summaries = sweep_metrics(
            lambda seed: random_grounded_tree(20, seed=seed),
            TreeBroadcastProtocol,
            seeds=range(4),
        )
        assert set(summaries) == {
            "total_messages",
            "total_bits",
            "max_message_bits",
            "max_edge_bits",
            "termination_step",
        }
        for summary in summaries.values():
            assert summary.samples == 4
            assert summary.minimum <= summary.mean <= summary.maximum

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            sweep_metrics(
                lambda seed: random_grounded_tree(5, seed=seed),
                TreeBroadcastProtocol,
                seeds=[],
            )

    def test_termination_requirement(self):
        with pytest.raises(AssertionError):
            sweep_metrics(
                lambda seed: with_dead_end_vertex(random_grounded_tree(8, seed=seed)),
                GeneralBroadcastProtocol,
                seeds=[0],
            )

    def test_termination_requirement_can_be_waived(self):
        summaries = sweep_metrics(
            lambda seed: with_dead_end_vertex(random_grounded_tree(8, seed=seed)),
            GeneralBroadcastProtocol,
            seeds=[0, 1],
            require_termination=False,
        )
        assert summaries["termination_step"].maximum == 0

    def test_spread(self):
        s = MetricSummary(name="x", minimum=2, mean=3, maximum=6, samples=3)
        assert s.spread == 3.0
        zero = MetricSummary(name="x", minimum=0, mean=0, maximum=0, samples=1)
        assert zero.spread == 0.0


class TestSummarize:
    def test_renders(self):
        summaries = sweep_metrics(
            lambda seed: random_grounded_tree(10, seed=seed),
            TreeBroadcastProtocol,
            seeds=range(3),
        )
        rows = summarize(summaries)
        text = render_table(rows)
        assert "total_bits" in text
        assert "spread" in text


class TestSpecSweep:
    def test_matches_factory_sweep(self):
        from repro.api import RunSpec
        from repro.analysis.sweeps import sweep_spec_metrics

        base = RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 20},
            protocol="tree-broadcast",
        )
        by_spec = sweep_spec_metrics(base, seeds=range(4))
        by_factory = sweep_metrics(
            lambda seed: random_grounded_tree(20, seed=seed),
            TreeBroadcastProtocol,
            seeds=range(4),
        )
        assert by_spec == by_factory

    def test_requires_seeds(self):
        from repro.api import RunSpec
        from repro.analysis.sweeps import sweep_spec_metrics

        base = RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 5},
            protocol="tree-broadcast",
        )
        with pytest.raises(ValueError):
            sweep_spec_metrics(base, seeds=[])

    def test_termination_requirement(self):
        from repro.api import RunSpec
        from repro.analysis.sweeps import sweep_spec_metrics

        base = RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 8},
            graph_transforms=("with-dead-end-vertex",),
            protocol="general-broadcast",
        )
        with pytest.raises(AssertionError):
            sweep_spec_metrics(base, seeds=[0])
        summaries = sweep_spec_metrics(base, seeds=[0, 1], require_termination=False)
        assert summaries["termination_step"].maximum == 0

    def test_persists_and_resumes(self, tmp_path):
        from repro.api import BatchRunner, RunSpec
        from repro.analysis.sweeps import sweep_spec_metrics

        base = RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 10},
            protocol="tree-broadcast",
        )
        out = tmp_path / "sweep.jsonl"
        runner = BatchRunner(parallel=False)
        first = sweep_spec_metrics(base, seeds=range(3), runner=runner, output_path=str(out))
        assert runner.stats.executed == 3
        second = sweep_spec_metrics(base, seeds=range(3), runner=runner, output_path=str(out))
        assert runner.stats.executed == 0
        assert first == second
