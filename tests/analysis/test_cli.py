"""Tests for the experiment-runner CLI."""

import io

import pytest

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.cli import _DESCRIPTIONS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "E1", "E2", "--out", "x.txt"])
        assert args.command == "run"
        assert args.experiments == ["E1", "E2"]
        assert args.out == "x.txt"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDescriptions:
    def test_every_experiment_described(self):
        assert set(_DESCRIPTIONS) == set(ALL_EXPERIMENTS)


class TestMain:
    def test_list_output(self, capsys):
        stream = io.StringIO()
        assert main(["list"], stream=stream) == 0
        text = stream.getvalue()
        for name in ALL_EXPERIMENTS:
            assert name in text

    def test_run_single(self):
        stream = io.StringIO()
        assert main(["run", "E2"], stream=stream) == 0
        text = stream.getvalue()
        assert "E2" in text
        assert "distinct_symbols" in text

    def test_run_case_insensitive(self):
        stream = io.StringIO()
        assert main(["run", "e2"], stream=stream) == 0

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"], stream=io.StringIO())

    def test_out_file(self, tmp_path):
        out = tmp_path / "report.txt"
        stream = io.StringIO()
        assert main(["run", "E2", "--out", str(out)], stream=stream) == 0
        assert "distinct_symbols" in out.read_text(encoding="utf-8")

    def test_report_command(self, tmp_path, monkeypatch):
        # Patch the registry to two fast experiments so the test stays quick;
        # the full report is exercised by `python -m repro report` manually.
        import repro.cli as cli_module

        fast = {"E2": cli_module.ALL_EXPERIMENTS["E2"], "E10": cli_module.ALL_EXPERIMENTS["E10"]}
        monkeypatch.setattr(cli_module, "ALL_EXPERIMENTS", fast)
        out = tmp_path / "report.md"
        stream = io.StringIO()
        assert main(["report", "--out", str(out)], stream=stream) == 0
        text = out.read_text(encoding="utf-8")
        assert text.startswith("# Experiment report")
        assert "## E2" in text and "## E10" in text


class TestSpecCommands:
    def _spec_payload(self, seed=0):
        from repro.api import RunSpec

        return RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 10},
            protocol="tree-broadcast",
            seed=seed,
        )

    def test_registry_lists_names(self):
        stream = io.StringIO()
        assert main(["registry"], stream=stream) == 0
        text = stream.getvalue()
        for name in ("tree-broadcast", "random-digraph", "fifo", "with-dead-end-vertex"):
            assert name in text

    def test_run_spec_file(self, tmp_path):
        from repro.api import dump_specs

        path = tmp_path / "spec.json"
        dump_specs([self._spec_payload()], str(path))
        stream = io.StringIO()
        assert main(["run", "--spec", str(path)], stream=stream) == 0
        assert "terminated" in stream.getvalue()

    def test_run_rejects_spec_plus_experiments(self, tmp_path):
        from repro.api import dump_specs

        path = tmp_path / "spec.json"
        dump_specs([self._spec_payload()], str(path))
        with pytest.raises(SystemExit):
            main(["run", "E1", "--spec", str(path)], stream=io.StringIO())

    def test_run_requires_something(self):
        with pytest.raises(SystemExit):
            main(["run"], stream=io.StringIO())

    def test_batch_executes_and_resumes(self, tmp_path):
        from repro.api import dump_specs, load_records

        specs_path = tmp_path / "specs.json"
        out_path = tmp_path / "out.jsonl"
        dump_specs([self._spec_payload(seed=s) for s in range(4)], str(specs_path))

        stream = io.StringIO()
        assert (
            main(
                ["batch", str(specs_path), "-o", str(out_path), "--serial"],
                stream=stream,
            )
            == 0
        )
        assert "4 executed, 0 reused" in stream.getvalue()
        assert len(load_records(str(out_path))) == 4

        stream = io.StringIO()
        assert (
            main(
                ["batch", str(specs_path), "-o", str(out_path), "--serial"],
                stream=stream,
            )
            == 0
        )
        assert "0 executed, 4 reused" in stream.getvalue()

    def test_batch_empty_file_errors(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["batch", str(empty)], stream=io.StringIO())
