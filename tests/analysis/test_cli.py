"""Tests for the experiment-runner CLI."""

import io

import pytest

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.cli import _DESCRIPTIONS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "E1", "E2", "--out", "x.txt"])
        assert args.command == "run"
        assert args.experiments == ["E1", "E2"]
        assert args.out == "x.txt"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDescriptions:
    def test_every_experiment_described(self):
        assert set(_DESCRIPTIONS) == set(ALL_EXPERIMENTS)


class TestMain:
    def test_list_output(self, capsys):
        stream = io.StringIO()
        assert main(["list"], stream=stream) == 0
        text = stream.getvalue()
        for name in ALL_EXPERIMENTS:
            assert name in text

    def test_run_single(self):
        stream = io.StringIO()
        assert main(["run", "E2"], stream=stream) == 0
        text = stream.getvalue()
        assert "E2" in text
        assert "distinct_symbols" in text

    def test_run_case_insensitive(self):
        stream = io.StringIO()
        assert main(["run", "e2"], stream=stream) == 0

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"], stream=io.StringIO())

    def test_out_file(self, tmp_path):
        out = tmp_path / "report.txt"
        stream = io.StringIO()
        assert main(["run", "E2", "--out", str(out)], stream=stream) == 0
        assert "distinct_symbols" in out.read_text(encoding="utf-8")

    def test_report_command(self, tmp_path, monkeypatch):
        # Patch the registry to two fast experiments so the test stays quick;
        # the full report is exercised by `python -m repro report` manually.
        import repro.cli as cli_module

        fast = {"E2": cli_module.ALL_EXPERIMENTS["E2"], "E10": cli_module.ALL_EXPERIMENTS["E10"]}
        monkeypatch.setattr(cli_module, "ALL_EXPERIMENTS", fast)
        out = tmp_path / "report.md"
        stream = io.StringIO()
        assert main(["report", "--out", str(out)], stream=stream) == 0
        text = out.read_text(encoding="utf-8")
        assert text.startswith("# Experiment report")
        assert "## E2" in text and "## E10" in text
