"""Tests for the experiment-runner CLI."""

import io
import json

import pytest

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.api import EXPERIMENTS, ensure_registered
from repro.cli import _campaign_name, _legacy_id, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "E1", "E2", "--out", "x.txt"])
        assert args.command == "run"
        assert args.experiments == ["E1", "E2"]
        assert args.out == "x.txt"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRegistryListParity:
    """`repro list` derives from EXPERIMENTS — the views can never drift."""

    def test_registry_matches_driver_table(self):
        ensure_registered()
        assert {_legacy_id(name) for name in EXPERIMENTS.names()} == set(
            ALL_EXPERIMENTS
        )

    def test_list_shows_every_registered_experiment(self):
        ensure_registered()
        stream = io.StringIO()
        assert main(["list"], stream=stream) == 0
        text = stream.getvalue()
        for name in EXPERIMENTS.names():
            assert f"[{name}]" in text
            assert getattr(EXPERIMENTS.get(name), "title", "") in text

    def test_name_mapping_round_trips(self):
        ensure_registered()
        for name in EXPERIMENTS.names():
            assert _campaign_name(_legacy_id(name)) == name


class TestMain:
    def test_list_output(self, capsys):
        stream = io.StringIO()
        assert main(["list"], stream=stream) == 0
        text = stream.getvalue()
        for name in ALL_EXPERIMENTS:
            assert name in text

    def test_run_single(self):
        stream = io.StringIO()
        assert main(["run", "E2"], stream=stream) == 0
        text = stream.getvalue()
        assert "E2" in text
        assert "distinct_symbols" in text

    def test_run_case_insensitive(self):
        stream = io.StringIO()
        assert main(["run", "e2"], stream=stream) == 0

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"], stream=io.StringIO())

    def test_out_file(self, tmp_path):
        out = tmp_path / "report.txt"
        stream = io.StringIO()
        assert main(["run", "E2", "--out", str(out)], stream=stream) == 0
        assert "distinct_symbols" in out.read_text(encoding="utf-8")

    def test_report_command(self, tmp_path, monkeypatch):
        # Patch the registry to two fast experiments so the test stays quick;
        # the full report is exercised by `python -m repro report` manually.
        import repro.cli as cli_module

        fast = {"E2": cli_module.ALL_EXPERIMENTS["E2"], "E10": cli_module.ALL_EXPERIMENTS["E10"]}
        monkeypatch.setattr(cli_module, "ALL_EXPERIMENTS", fast)
        out = tmp_path / "report.md"
        stream = io.StringIO()
        assert main(["report", "--out", str(out)], stream=stream) == 0
        text = out.read_text(encoding="utf-8")
        assert text.startswith("# Experiment report")
        assert "## E2" in text and "## E10" in text


class TestSpecCommands:
    def _spec_payload(self, seed=0):
        from repro.api import RunSpec

        return RunSpec(
            graph="random-grounded-tree",
            graph_params={"num_internal": 10},
            protocol="tree-broadcast",
            seed=seed,
        )

    def test_registry_lists_names(self):
        stream = io.StringIO()
        assert main(["registry"], stream=stream) == 0
        text = stream.getvalue()
        for name in ("tree-broadcast", "random-digraph", "fifo", "with-dead-end-vertex"):
            assert name in text

    def test_run_spec_file(self, tmp_path):
        from repro.api import dump_specs

        path = tmp_path / "spec.json"
        dump_specs([self._spec_payload()], str(path))
        stream = io.StringIO()
        assert main(["run", "--spec", str(path)], stream=stream) == 0
        assert "terminated" in stream.getvalue()

    def test_run_rejects_spec_plus_experiments(self, tmp_path):
        from repro.api import dump_specs

        path = tmp_path / "spec.json"
        dump_specs([self._spec_payload()], str(path))
        with pytest.raises(SystemExit):
            main(["run", "E1", "--spec", str(path)], stream=io.StringIO())

    def test_run_requires_something(self):
        with pytest.raises(SystemExit):
            main(["run"], stream=io.StringIO())

    def test_batch_executes_and_resumes(self, tmp_path):
        from repro.api import dump_specs, load_records

        specs_path = tmp_path / "specs.json"
        out_path = tmp_path / "out.jsonl"
        dump_specs([self._spec_payload(seed=s) for s in range(4)], str(specs_path))

        stream = io.StringIO()
        assert (
            main(
                ["batch", str(specs_path), "-o", str(out_path), "--serial"],
                stream=stream,
            )
            == 0
        )
        assert "4 executed, 0 reused" in stream.getvalue()
        assert len(load_records(str(out_path))) == 4

        stream = io.StringIO()
        assert (
            main(
                ["batch", str(specs_path), "-o", str(out_path), "--serial"],
                stream=stream,
            )
            == 0
        )
        assert "0 executed, 4 reused" in stream.getvalue()

    def test_batch_empty_file_errors(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["batch", str(empty)], stream=io.StringIO())


def _experiment_summary(text: str) -> dict:
    lines = [l for l in text.splitlines() if l.startswith("EXPERIMENT_SUMMARY ")]
    assert len(lines) == 1, text
    return json.loads(lines[0][len("EXPERIMENT_SUMMARY "):])


class TestExperimentCommand:
    def test_runs_quick_campaign_with_summary(self, tmp_path):
        stream = io.StringIO()
        assert (
            main(
                ["experiment", "e05", "--quick", "--serial", "--out", str(tmp_path)],
                stream=stream,
            )
            == 0
        )
        text = stream.getvalue()
        assert "bound_E2VlogD" in text
        summary = _experiment_summary(text)
        assert summary["experiments"] == ["e05"]
        assert summary["scale"] == "quick"
        assert summary["executed"] == summary["total_specs"] > 0
        assert (tmp_path / "e05.runs.jsonl").exists()
        assert (tmp_path / "e05.rows.json").exists()

    def test_resume_is_noop(self, tmp_path):
        args = ["experiment", "e05", "--quick", "--serial", "--out", str(tmp_path)]
        assert main(args, stream=io.StringIO()) == 0
        stream = io.StringIO()
        assert main(args, stream=stream) == 0
        summary = _experiment_summary(stream.getvalue())
        assert summary["executed"] == 0
        assert summary["reused"] == summary["total_specs"] > 0

    def test_legacy_ids_accepted(self):
        stream = io.StringIO()
        assert main(["experiment", "E5", "--quick", "--serial"], stream=stream) == 0
        assert _experiment_summary(stream.getvalue())["experiments"] == ["e05"]

    def test_engine_override(self):
        stream = io.StringIO()
        assert (
            main(
                ["experiment", "e05", "--quick", "--serial", "--engine", "fastpath"],
                stream=stream,
            )
            == 0
        )
        summary = _experiment_summary(stream.getvalue())
        assert summary["engine"] == "fastpath"
        assert summary["engines_applied"] == {"e05": "fastpath"}

    def test_engine_override_reported_as_ignored_where_ignored(self, tmp_path):
        """e13 is engine-locked and e02 runs no engine at all; the summary and
        artifacts must not claim their results came from fastpath."""
        stream = io.StringIO()
        assert (
            main(
                [
                    "experiment", "e13", "e02",
                    "--quick", "--serial", "--engine", "fastpath",
                    "--out", str(tmp_path),
                ],
                stream=stream,
            )
            == 0
        )
        summary = _experiment_summary(stream.getvalue())
        assert summary["engine"] == "fastpath"
        assert summary["engines_applied"] == {"e13": None, "e02": None}
        payload = json.loads((tmp_path / "e13.rows.json").read_text(encoding="utf-8"))
        assert payload["engine"] is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["experiment", "e05", "--engine", "warp-drive"], stream=io.StringIO()
            )

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"], stream=io.StringIO())

    def test_requires_names_or_spec(self):
        with pytest.raises(SystemExit):
            main(["experiment"], stream=io.StringIO())

    def test_quick_conflicts_with_other_scale(self):
        with pytest.raises(SystemExit):
            main(
                ["experiment", "e05", "--quick", "--scale", "full"],
                stream=io.StringIO(),
            )

    def test_unknown_scale_is_clean_error_before_any_run(self):
        # A typo'd scale must fail up front for the whole list (no partial
        # campaign execution, no traceback).
        with pytest.raises(SystemExit, match="no scale 'nope'"):
            main(
                ["experiment", "e05", "e13", "--scale", "nope", "--serial"],
                stream=io.StringIO(),
            )

    def test_spec_file_campaign(self, tmp_path):
        from repro.api import ExperimentSpec

        spec = ExperimentSpec(
            name="cli-demo",
            base={"graph": "random-grounded-tree", "protocol": "tree-broadcast"},
            axes={"graph_params.num_internal": [8], "seed": [0, 1]},
            aggregator="min-mean-max",
        )
        path = tmp_path / "campaign.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        stream = io.StringIO()
        assert (
            main(["experiment", "--spec", str(path), "--serial"], stream=stream) == 0
        )
        summary = _experiment_summary(stream.getvalue())
        assert summary["experiments"] == ["cli-demo"]
        assert summary["total_specs"] == 2

    def test_driver_experiment_through_campaign_cli(self):
        stream = io.StringIO()
        assert main(["experiment", "e02", "--quick", "--serial"], stream=stream) == 0
        text = stream.getvalue()
        assert "distinct_symbols" in text
        assert _experiment_summary(text)["rows"] == 3
