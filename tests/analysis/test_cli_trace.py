"""CLI trace wiring: record, info, profile, replay and batch artifacts."""

import io
import json
import os

import pytest

from repro.cli import main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "graph": "random-grounded-tree",
                "graph_params": {"num_internal": 8},
                "protocol": "tree-broadcast",
                "seed": 3,
            }
        ),
        encoding="utf-8",
    )
    return str(path)


@pytest.fixture()
def recorded(tmp_path, spec_file):
    out = str(tmp_path / "run.rtrace")
    code, _ = run_cli(["trace", "record", spec_file, "-o", out])
    assert code == 0
    return out


class TestTraceRecord:
    def test_record_writes_artifact(self, tmp_path, spec_file):
        out = str(tmp_path / "run.rtrace")
        code, text = run_cli(["trace", "record", spec_file, "-o", out])
        assert code == 0
        assert os.path.exists(out)
        assert f"trace written to {out}" in text
        assert "policy=full" in text

    def test_record_default_output_beside_spec(self, spec_file):
        code, text = run_cli(["trace", "record", spec_file])
        expected = os.path.splitext(spec_file)[0] + ".rtrace"
        assert code == 0
        assert os.path.exists(expected)
        assert f"trace written to {expected}" in text

    def test_record_sampled_with_engine_override(self, tmp_path, spec_file):
        out = str(tmp_path / "s.rtrace")
        code, text = run_cli(
            [
                "trace", "record", spec_file,
                "-o", out, "--trace", "sample:2", "--engine", "fastpath",
            ]
        )
        assert code == 0
        assert "policy=sample:2" in text

    def test_run_spec_trace_flag(self, tmp_path, spec_file):
        """`repro run --spec --trace` is the inline form of trace record."""
        out = str(tmp_path / "r.rtrace")
        code, text = run_cli(
            [
                "run", "--spec", spec_file,
                "--trace", "full", "--trace-out", out, "--no-store",
            ]
        )
        assert code == 0
        assert os.path.exists(out)
        assert "trace written to" in text


class TestTraceInfo:
    def test_info_reports_header_and_footer(self, recorded):
        code, text = run_cli(["trace", "info", recorded])
        assert code == 0
        info = json.loads(text)
        assert info["header"]["policy"] == "full"
        assert info["header"]["seed"] == 3
        assert info["footer"]["events_written"] == info["num_events"]
        assert info["distinct_payloads"] > 0


class TestTraceProfile:
    def test_profile_prints_histograms(self, recorded):
        code, text = run_cli(["trace", "profile", recorded])
        assert code == 0
        assert f"== {recorded} ==" in text
        payload = json.loads(text.split("==\n", 1)[1])
        assert payload["events"] > 0
        assert sum(payload["message_size_histogram"].values()) == payload["deliveries"]

    def test_profile_many(self, recorded, tmp_path, spec_file):
        other = str(tmp_path / "other.rtrace")
        assert run_cli(["trace", "record", spec_file, "-o", other])[0] == 0
        code, text = run_cli(["trace", "profile", recorded, other])
        assert code == 0
        assert text.count("==") == 4  # two "== path ==" banners


class TestTraceReplay:
    def test_replay_exits_zero(self, recorded):
        code, text = run_cli(["trace", "replay", recorded])
        assert code == 0
        assert "REPLAY OK" in text

    def test_replay_with_matching_spec(self, recorded, spec_file):
        code, text = run_cli(["trace", "replay", recorded, "--spec", spec_file])
        assert code == 0
        assert "REPLAY OK" in text

    def test_tampered_trace_exits_one(self, recorded):
        data = bytearray(open(recorded, "rb").read())
        i = data.find(b'"step"')
        i = data.find(b"}}", i) + 10
        data[i] ^= 0xFF
        open(recorded, "wb").write(bytes(data))
        code, text = run_cli(["trace", "replay", recorded])
        assert code == 1
        assert "REPLAY FAILED" in text
        assert "checksum mismatch" in text


class TestBatchTraceArtifacts:
    def _specs_file(self, tmp_path, trace):
        path = tmp_path / "specs.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "graph": "random-grounded-tree",
                        "graph_params": {"num_internal": 8},
                        "protocol": "tree-broadcast",
                        "seed": seed,
                        "trace": trace,
                    }
                    for seed in range(2)
                ]
            ),
            encoding="utf-8",
        )
        return str(path)

    def test_batch_with_store_writes_traces(self, tmp_path):
        from repro.api import RunSpec
        from repro.tracing import trace_artifact_path

        specs_path = self._specs_file(tmp_path, "full")
        store = str(tmp_path / "store")
        code, _ = run_cli(["batch", specs_path, "--serial", "--store", store])
        assert code == 0
        traces_root = os.path.join(os.path.abspath(store), "traces")
        specs = [
            RunSpec.from_dict(d)
            for d in json.loads(open(specs_path, encoding="utf-8").read())
        ]
        for spec in specs:
            artifact = trace_artifact_path(traces_root, spec)
            assert os.path.exists(artifact)
            assert run_cli(["trace", "replay", artifact])[0] == 0

    def test_experiment_trace_override_records_campaign(self, tmp_path):
        """The acceptance path: record e05 --quick, replay an artifact."""
        store = str(tmp_path / "store")
        code, text = run_cli(
            [
                "experiment", "e05", "--quick", "--serial",
                "--trace", "sample:8", "--store", store,
                "--out", str(tmp_path / "artifacts"),
            ]
        )
        assert code == 0
        summary = json.loads(
            next(
                line for line in text.splitlines()
                if line.startswith("EXPERIMENT_SUMMARY ")
            )[len("EXPERIMENT_SUMMARY "):]
        )
        assert summary["trace"] == "sample:8"
        artifacts = [
            os.path.join(root, name)
            for root, _, files in os.walk(os.path.join(store, "traces"))
            for name in files
            if name.endswith(".rtrace")
        ]
        assert len(artifacts) == summary["total_specs"] > 0
        code, text = run_cli(["trace", "replay", artifacts[0]])
        assert code == 0
        assert "REPLAY OK" in text

    def test_experiment_bad_trace_policy(self):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "e05", "--quick", "--trace", "sometimes"],
                 stream=io.StringIO())
        assert "cannot apply --trace" in str(excinfo.value.code)

    def test_batch_without_store_skips_artifacts(self, tmp_path):
        specs_path = self._specs_file(tmp_path, "sample:2")
        code, _ = run_cli(["batch", specs_path, "--serial", "--no-store"])
        assert code == 0
        assert not any(
            name.endswith(".rtrace")
            for _, _, files in os.walk(tmp_path)
            for name in files
        )
