"""Tests for the engine benchmark harness and the ``repro bench`` CLI."""

import io
import json

import pytest

from repro.analysis.benchmark import (
    bench_spec,
    check_floors,
    load_floors,
    measure_spec,
    render_bench_table,
    run_engine_benchmarks,
    write_benchmarks,
)
from repro.cli import main


def tiny_payload(**kwargs):
    """A real (small) benchmark run: n=8 keeps this test-suite fast."""
    defaults = dict(sizes=(8,), engines=("async", "fastpath"), repeats=1)
    defaults.update(kwargs)
    return run_engine_benchmarks(**defaults)


class TestHarness:
    def test_bench_spec_has_requested_size(self):
        spec = bench_spec(16, "fastpath")
        assert spec.build_graph().num_vertices == 16
        assert spec.engine == "fastpath"

    def test_measure_spec_reports_throughput(self):
        row = measure_spec(bench_spec(8, "fastpath"), repeats=2)
        assert row["engine"] == "fastpath"
        assert row["n"] == 8
        assert row["steps"] > 0
        assert row["steps_per_sec"] > 0
        assert row["outcome"] == "terminated"

    def test_measure_spec_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            measure_spec(bench_spec(8, "async"), repeats=0)

    def test_payload_shape_and_comparisons(self):
        payload = tiny_payload()
        assert payload["suite"] == "engines"
        assert {row["engine"] for row in payload["results"]} == {"async", "fastpath"}
        (comparison,) = payload["comparisons"]
        assert comparison["n"] == 8
        assert comparison["fastpath_vs_async"] > 0
        assert "python" in payload["environment"]

    def test_write_benchmarks_round_trips(self, tmp_path):
        payload = tiny_payload()
        path = tmp_path / "BENCH_engines.json"
        write_benchmarks(payload, str(path))
        assert json.loads(path.read_text(encoding="utf-8")) == payload

    def test_render_bench_table_mentions_every_engine(self):
        text = render_bench_table(tiny_payload())
        assert "async" in text and "fastpath" in text and "steps/sec" in text


class TestFloors:
    def test_passing_floors(self):
        payload = tiny_payload()
        assert check_floors(payload, {"fastpath_min_steps_per_sec": {"8": 1}}) == []

    def test_absolute_floor_violation(self):
        payload = tiny_payload()
        violations = check_floors(
            payload, {"fastpath_min_steps_per_sec": {"8": 10**12}}
        )
        assert len(violations) == 1
        assert "below the floor" in violations[0]

    def test_ratio_floor_violation(self):
        payload = tiny_payload()
        violations = check_floors(
            payload, {"fastpath_vs_async_min_ratio": {"8": 10**6}}
        )
        assert len(violations) == 1
        assert "vs async" in violations[0]

    def test_missing_size_is_a_violation(self):
        payload = tiny_payload()
        violations = check_floors(
            payload,
            {
                "fastpath_min_steps_per_sec": {"512": 1},
                "fastpath_vs_async_min_ratio": {"512": 1.0},
            },
        )
        assert len(violations) == 2

    def test_checked_in_floor_file_parses_and_names_the_gated_size(self):
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"
        floors = load_floors(str(floor_path))
        assert "64" in floors["fastpath_min_steps_per_sec"]
        assert floors["fastpath_vs_async_min_ratio"]["64"] >= 2.0


class TestBenchCli:
    def test_bench_writes_json_and_reports(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        stream = io.StringIO()
        code = main(
            ["bench", "--sizes", "8", "--repeats", "1", "--engines", "async", "fastpath", "--out", str(out)],
            stream=stream,
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["suite"] == "engines"
        assert "steps/sec" in stream.getvalue()

    def test_bench_floor_gate_failure_exits_nonzero(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"fastpath_min_steps_per_sec": {"8": 10**12}}),
            encoding="utf-8",
        )
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "async", "fastpath",
                "--out", str(out), "--floors", str(floors),
            ],
            stream=stream,
        )
        assert code == 1
        assert "FLOOR VIOLATION" in stream.getvalue()

    def test_bench_floor_gate_pass(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"fastpath_min_steps_per_sec": {"8": 1}}), encoding="utf-8"
        )
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "async", "fastpath",
                "--out", str(out), "--floors", str(floors),
            ],
            stream=stream,
        )
        assert code == 0
        assert "all floors" in stream.getvalue()


class TestBatchSummaryLine:
    def test_batch_emits_machine_readable_summary(self, tmp_path):
        from repro.api import RunSpec, dump_specs

        specs = [
            RunSpec(
                graph="path-network",
                graph_params={"length": 3},
                protocol="flooding",
                seed=seed,
            )
            for seed in range(2)
        ]
        spec_file = tmp_path / "specs.json"
        dump_specs(specs, str(spec_file))
        out = tmp_path / "records.jsonl"

        def run_and_parse():
            stream = io.StringIO()
            assert (
                main(
                    ["batch", str(spec_file), "-o", str(out), "--serial"],
                    stream=stream,
                )
                == 0
            )
            lines = [
                line
                for line in stream.getvalue().splitlines()
                if line.startswith("BATCH_SUMMARY ")
            ]
            assert len(lines) == 1
            return json.loads(lines[0][len("BATCH_SUMMARY ") :])

        first = run_and_parse()
        assert first["total"] == 2
        assert first["executed"] == 2
        assert first["reused"] == 0
        # The resume no-op is what CI asserts from this line.
        second = run_and_parse()
        assert second["executed"] == 0
        assert second["reused"] == 2
        assert second["output"] == str(out)
