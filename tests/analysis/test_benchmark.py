"""Tests for the engine benchmark harness and the ``repro bench`` CLI."""

import io
import json

import pytest

from repro.analysis.benchmark import (
    bench_spec,
    check_floors,
    load_floors,
    measure_spec,
    protocol_bench_spec,
    render_bench_table,
    run_engine_benchmarks,
    run_protocol_matrix,
    write_benchmarks,
)
from repro.api import PROTOCOLS, ensure_registered
from repro.cli import main


def tiny_payload(**kwargs):
    """A real (small) benchmark run: n=8 keeps this test-suite fast."""
    defaults = dict(sizes=(8,), engines=("async", "fastpath"), repeats=1)
    defaults.update(kwargs)
    return run_engine_benchmarks(**defaults)


class TestHarness:
    def test_bench_spec_has_requested_size(self):
        spec = bench_spec(16, "fastpath")
        assert spec.build_graph().num_vertices == 16
        assert spec.engine == "fastpath"

    def test_measure_spec_reports_throughput(self):
        row = measure_spec(bench_spec(8, "fastpath"), repeats=2)
        assert row["engine"] == "fastpath"
        assert row["n"] == 8
        assert row["steps"] > 0
        assert row["steps_per_sec"] > 0
        assert row["outcome"] == "terminated"

    def test_measure_spec_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            measure_spec(bench_spec(8, "async"), repeats=0)

    def test_payload_shape_and_comparisons(self):
        payload = tiny_payload()
        assert payload["suite"] == "engines"
        assert {row["engine"] for row in payload["results"]} == {"async", "fastpath"}
        (comparison,) = payload["comparisons"]
        assert comparison["n"] == 8
        assert comparison["fastpath_vs_async"] > 0
        assert "python" in payload["environment"]

    def test_write_benchmarks_round_trips(self, tmp_path):
        payload = tiny_payload()
        path = tmp_path / "BENCH_engines.json"
        write_benchmarks(payload, str(path))
        assert json.loads(path.read_text(encoding="utf-8")) == payload

    def test_render_bench_table_mentions_every_engine(self):
        text = render_bench_table(tiny_payload())
        assert "async" in text and "fastpath" in text and "steps/sec" in text

    def test_measure_spec_inner_loops_amortise_short_runs(self):
        row = measure_spec(bench_spec(8, "fastpath"), repeats=1, inner_loops=3)
        assert row["inner_loops"] == 3
        assert row["steps_per_sec"] > 0

    def test_measure_spec_rejects_zero_inner_loops(self):
        with pytest.raises(ValueError):
            measure_spec(bench_spec(8, "async"), inner_loops=0)


def tiny_matrix(**kwargs):
    """A real (small) protocol coverage matrix: n=8 keeps the suite fast."""
    defaults = dict(n=8, repeats=1, min_seconds=0.0)
    defaults.update(kwargs)
    return run_protocol_matrix(**defaults)


class TestProtocolMatrix:
    def test_protocol_bench_spec_uses_natural_graph_family(self):
        assert protocol_bench_spec("tree-broadcast", 16, "async").graph == (
            "random-grounded-tree"
        )
        assert protocol_bench_spec("general-broadcast", 16, "async").graph == (
            "random-digraph"
        )

    def test_matrix_covers_every_registered_protocol(self):
        ensure_registered()
        matrix = tiny_matrix()
        benched = {row["protocol"] for row in matrix["results"]}
        assert benched == set(PROTOCOLS.names())
        compared = {c["protocol"] for c in matrix["comparisons"]}
        assert compared == set(PROTOCOLS.names())
        for comparison in matrix["comparisons"]:
            assert comparison["fastpath_vs_async"] > 0

    def test_matrix_rows_carry_both_engines(self):
        matrix = tiny_matrix()
        for protocol in PROTOCOLS.names():
            engines = {
                row["engine"]
                for row in matrix["results"]
                if row["protocol"] == protocol
            }
            assert engines == {"async", "fastpath"}

    def test_render_table_includes_protocol_coverage(self):
        payload = tiny_payload()
        payload["protocols"] = tiny_matrix()
        text = render_bench_table(payload)
        assert "protocol kernel coverage" in text
        assert "tree-broadcast" in text


class TestFloors:
    def test_passing_floors(self):
        payload = tiny_payload()
        assert check_floors(payload, {"fastpath_min_steps_per_sec": {"8": 1}}) == []

    def test_absolute_floor_violation(self):
        payload = tiny_payload()
        violations = check_floors(
            payload, {"fastpath_min_steps_per_sec": {"8": 10**12}}
        )
        assert len(violations) == 1
        assert "below the floor" in violations[0]

    def test_ratio_floor_violation(self):
        payload = tiny_payload()
        violations = check_floors(
            payload, {"fastpath_vs_async_min_ratio": {"8": 10**6}}
        )
        assert len(violations) == 1
        assert "vs async" in violations[0]

    def test_missing_size_is_a_violation(self):
        payload = tiny_payload()
        violations = check_floors(
            payload,
            {
                "fastpath_min_steps_per_sec": {"512": 1},
                "fastpath_vs_async_min_ratio": {"512": 1.0},
            },
        )
        assert len(violations) == 2

    def test_checked_in_floor_file_parses_and_names_the_gated_size(self):
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"
        floors = load_floors(str(floor_path))
        assert "64" in floors["fastpath_min_steps_per_sec"]
        assert floors["fastpath_vs_async_min_ratio"]["64"] >= 2.0

    def test_checked_in_floors_gate_every_registered_protocol(self):
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"
        floors = load_floors(str(floor_path))
        ensure_registered()
        assert floors["require_protocol_coverage"] is True
        per_protocol = floors["protocol_vs_async_min_ratio"]
        for name in PROTOCOLS.names():
            assert per_protocol.get(name, 0) >= 2.0, name

    def test_protocol_ratio_floor_violation(self):
        from repro.analysis.benchmark import PROTOCOL_MATRIX_N

        payload = tiny_payload()
        payload["protocols"] = tiny_matrix()
        # The ratio floors only apply at the gated size; pretend the tiny
        # matrix was measured there to exercise the ratio check itself.
        payload["protocols"]["n"] = PROTOCOL_MATRIX_N
        violations = check_floors(
            payload, {"protocol_vs_async_min_ratio": {"flooding": 10**6}}
        )
        assert len(violations) == 1
        assert "flooding" in violations[0]

    def test_protocol_missing_from_matrix_is_a_violation(self):
        from repro.analysis.benchmark import PROTOCOL_MATRIX_N

        payload = tiny_payload()
        payload["protocols"] = tiny_matrix()
        payload["protocols"]["n"] = PROTOCOL_MATRIX_N
        violations = check_floors(
            payload, {"protocol_vs_async_min_ratio": {"no-such-protocol": 1.0}}
        )
        assert len(violations) == 1
        assert "no-such-protocol" in violations[0]

    def test_protocol_floors_reject_matrix_at_the_wrong_size(self):
        payload = tiny_payload()
        payload["protocols"] = tiny_matrix()  # measured at n=8
        violations = check_floors(
            payload, {"protocol_vs_async_min_ratio": {"flooding": 0.1}}
        )
        assert len(violations) == 1
        assert "calibrated at n=64" in violations[0]

    def test_registered_protocol_absent_from_matrix_fails_coverage_gate(self):
        payload = tiny_payload()  # no "protocols" block at all
        violations = check_floors(payload, {"require_protocol_coverage": True})
        ensure_registered()
        assert len(violations) == len(PROTOCOLS.names())
        assert all("missing from the bench matrix" in v for v in violations)

    def test_full_coverage_satisfies_the_gate(self):
        payload = tiny_payload()
        payload["protocols"] = tiny_matrix()
        assert check_floors(payload, {"require_protocol_coverage": True}) == []


class TestBenchCli:
    def test_bench_writes_json_and_reports(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "async", "fastpath",
                "--no-protocols", "--no-batch-bench", "--out", str(out),
            ],
            stream=stream,
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["suite"] == "engines"
        assert "steps/sec" in stream.getvalue()

    def test_bench_floor_gate_failure_exits_nonzero(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"fastpath_min_steps_per_sec": {"8": 10**12}}),
            encoding="utf-8",
        )
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "async", "fastpath", "--no-protocols", "--no-batch-bench",
                "--out", str(out), "--floors", str(floors),
            ],
            stream=stream,
        )
        assert code == 1
        assert "FLOOR VIOLATION" in stream.getvalue()

    def test_bench_floor_gate_pass(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"fastpath_min_steps_per_sec": {"8": 1}}), encoding="utf-8"
        )
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "async", "fastpath", "--no-protocols", "--no-batch-bench",
                "--out", str(out), "--floors", str(floors),
            ],
            stream=stream,
        )
        assert code == 0
        assert "all floors" in stream.getvalue()


class TestBenchCliProtocolMatrix:
    def test_bench_includes_protocol_matrix_and_satisfies_coverage(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"require_protocol_coverage": True}), encoding="utf-8"
        )
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "async", "fastpath",
                "--protocols-n", "8", "--no-batch-bench",
                "--out", str(out), "--floors", str(floors),
            ],
            stream=stream,
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        ensure_registered()
        benched = {row["protocol"] for row in payload["protocols"]["results"]}
        assert benched == set(PROTOCOLS.names())
        assert "protocol kernel coverage" in stream.getvalue()

    def test_bench_no_protocols_fails_coverage_floor(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        floors = tmp_path / "floors.json"
        floors.write_text(
            json.dumps({"require_protocol_coverage": True}), encoding="utf-8"
        )
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "async", "fastpath", "--no-protocols", "--no-batch-bench",
                "--out", str(out), "--floors", str(floors),
            ],
            stream=stream,
        )
        assert code == 1
        assert "missing from the bench matrix" in stream.getvalue()


class TestStoreBench:
    def test_store_block_shape_and_hit_rate(self):
        from repro.analysis.benchmark import run_store_benchmarks

        block = run_store_benchmarks(n_records=50)
        assert block["n_records"] == 50
        assert block["indexed"] == 50 and block["retrieved"] == 50
        assert block["cache_hit_rate"] == 1.0
        for key in ("put_per_sec", "contains_per_sec", "get_per_sec"):
            assert block[key] > 0

    def test_store_floors_pass_and_fail(self):
        from repro.analysis.benchmark import run_store_benchmarks

        payload = {"store": run_store_benchmarks(n_records=50)}
        assert check_floors(payload, {"store_min_cache_hit_rate": 0.95}) == []
        violations = check_floors(payload, {"store_min_put_per_sec": 10**12})
        assert len(violations) == 1 and "below the floor" in violations[0]

    def test_missing_store_block_is_a_violation(self):
        violations = check_floors({}, {"store_min_cache_hit_rate": 0.95})
        assert len(violations) == 1
        assert "no store benchmark block" in violations[0]

    def test_checked_in_floors_gate_the_store(self):
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"
        floors = load_floors(str(floor_path))
        assert floors["store_min_cache_hit_rate"] >= 0.95

    def test_render_table_mentions_store(self):
        from repro.analysis.benchmark import run_store_benchmarks

        payload = tiny_payload()
        payload["store"] = run_store_benchmarks(n_records=20)
        assert "result store at 20 records" in render_bench_table(payload)

    def test_bench_cli_no_store_bench_fails_store_floor(self, tmp_path):
        floors = tmp_path / "floors.json"
        floors.write_text(json.dumps({"store_min_cache_hit_rate": 0.95}))
        stream = io.StringIO()
        code = main(
            [
                "bench",
                "--quick",
                "--sizes",
                "8",
                "--repeats",
                "1",
                "--no-protocols", "--no-batch-bench",
                "--no-store-bench",
                "--floors",
                str(floors),
                "--out",
                str(tmp_path / "bench.json"),
            ],
            stream=stream,
        )
        assert code == 1
        assert "no store benchmark block" in stream.getvalue()


class TestBatchSummaryLine:
    def test_batch_emits_machine_readable_summary(self, tmp_path):
        from repro.api import RunSpec, dump_specs

        specs = [
            RunSpec(
                graph="path-network",
                graph_params={"length": 3},
                protocol="flooding",
                seed=seed,
            )
            for seed in range(2)
        ]
        spec_file = tmp_path / "specs.json"
        dump_specs(specs, str(spec_file))
        out = tmp_path / "records.jsonl"

        def run_and_parse():
            stream = io.StringIO()
            assert (
                main(
                    ["batch", str(spec_file), "-o", str(out), "--serial"],
                    stream=stream,
                )
                == 0
            )
            lines = [
                line
                for line in stream.getvalue().splitlines()
                if line.startswith("BATCH_SUMMARY ")
            ]
            assert len(lines) == 1
            return json.loads(lines[0][len("BATCH_SUMMARY ") :])

        first = run_and_parse()
        assert first["total"] == 2
        assert first["executed"] == 2
        assert first["reused"] == 0
        # The resume no-op is what CI asserts from this line.
        second = run_and_parse()
        assert second["executed"] == 0
        assert second["reused"] == 2
        assert second["output"] == str(out)


class TestTraceBench:
    """The trace-capture overhead suite and its ratio *ceiling*."""

    def _block(self, **kwargs):
        from repro.analysis.benchmark import run_trace_benchmarks

        defaults = dict(n=16, sample_k=4, repeats=1)
        defaults.update(kwargs)
        return run_trace_benchmarks(**defaults)

    def test_block_shape(self):
        block = self._block()
        arms = [row["arm"] for row in block["results"]]
        assert arms == ["kernel", "untraced", "traced-full", "traced-sample:4"]
        for row in block["results"]:
            assert row["steps"] > 0
            assert row["steps_per_sec"] > 0
        overhead = block["overhead"]
        assert overhead["traced_full_vs_untraced"] > 0
        assert overhead["trace_bytes_full"] > overhead["trace_bytes_sample"] > 0

    def test_trace_ceiling_passes_and_fails(self):
        payload = {"trace": self._block()}
        measured = payload["trace"]["overhead"]["traced_full_vs_untraced"]
        assert check_floors(
            payload, {"trace_overhead_max_ratio": measured + 1.0}
        ) == []
        violations = check_floors(
            payload, {"trace_overhead_max_ratio": measured / 100.0}
        )
        assert len(violations) == 1
        assert "above the ceiling" in violations[0]

    def test_missing_trace_block_is_a_violation(self):
        violations = check_floors({}, {"trace_overhead_max_ratio": 1.5})
        assert len(violations) == 1
        assert "no trace benchmark block" in violations[0]
        assert "--no-trace-bench" in violations[0]

    def test_block_without_ratio_is_a_violation(self):
        payload = {"trace": {"overhead": {}}}
        violations = check_floors(payload, {"trace_overhead_max_ratio": 1.5})
        assert len(violations) == 1
        assert "traced_full_vs_untraced" in violations[0]

    def test_checked_in_floors_gate_trace_overhead(self):
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"
        floors = load_floors(str(floor_path))
        assert 1.0 <= floors["trace_overhead_max_ratio"] <= 2.0

    def test_render_table_mentions_trace(self):
        payload = tiny_payload()
        payload["trace"] = self._block()
        text = render_bench_table(payload)
        assert "trace capture overhead" in text
        assert "full capture overhead" in text

    def test_bench_cli_no_trace_bench_fails_trace_ceiling(self, tmp_path):
        floors = tmp_path / "floors.json"
        floors.write_text(json.dumps({"trace_overhead_max_ratio": 1.5}))
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "fastpath", "--no-protocols", "--no-store-bench",
                "--no-batch-bench", "--no-trace-bench",
                "--floors", str(floors), "--out", str(tmp_path / "bench.json"),
            ],
            stream=stream,
        )
        assert code == 1
        assert "no trace benchmark block" in stream.getvalue()


class TestBatchBench:
    """The batch-engine seed-group suite and its ratio floor."""

    def _block(self, ks=(3,)):
        pytest.importorskip("numpy")
        from repro.analysis.benchmark import run_batch_benchmarks

        return run_batch_benchmarks(ks=ks, repeats=1)

    def test_block_shape(self):
        block = self._block(ks=(2, 4))
        assert block["ks"] == [2, 4]
        assert [row["k"] for row in block["results"]] == [2, 4]
        for row in block["results"]:
            assert row["steps"] > 0
            assert row["batch_steps_per_sec"] > 0
            assert row["fastpath_steps_per_sec"] > 0
            assert row["ratio"] > 0
        assert block["workload"]["graph_params"]["seed"] == 0  # pinned topology

    def test_bench_spec_pins_the_graph_seed(self):
        from repro.analysis.benchmark import batch_bench_spec

        spec = batch_bench_spec()
        assert spec.engine == "batch"
        assert "seed" in spec.graph_params  # one topology per seed-group

    def test_batch_floors_pass_and_fail(self):
        payload = {"batch": self._block()}
        assert check_floors(payload, {"batch_vs_fastpath_min_ratio": {"3": 0.001}}) == []
        violations = check_floors(
            payload, {"batch_vs_fastpath_min_ratio": {"3": 10**6}}
        )
        assert len(violations) == 1
        assert "batch vs fastpath" in violations[0]

    def test_missing_k_is_a_violation(self):
        payload = {"batch": self._block()}
        violations = check_floors(
            payload, {"batch_vs_fastpath_min_ratio": {"512": 1.0}}
        )
        assert len(violations) == 1
        assert "K=512" in violations[0]

    def test_missing_batch_block_is_a_violation(self):
        violations = check_floors({}, {"batch_vs_fastpath_min_ratio": {"64": 3.0}})
        assert len(violations) == 1
        assert "no batch benchmark block" in violations[0]
        assert "--no-batch-bench" in violations[0]

    def test_checked_in_floors_gate_the_batch_engine(self):
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"
        floors = load_floors(str(floor_path))
        assert floors["batch_vs_fastpath_min_ratio"]["64"] >= 3.0

    def test_render_table_mentions_batch(self):
        payload = tiny_payload()
        payload["batch"] = self._block()
        text = render_bench_table(payload)
        assert "batch engine seed-groups" in text
        assert "fastpath/s" in text

    def test_bench_cli_writes_batch_block(self, tmp_path):
        pytest.importorskip("numpy")
        out = tmp_path / "BENCH_engines.json"
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "fastpath", "--no-protocols", "--no-store-bench",
                "--batch-ks", "3", "--out", str(out),
            ],
            stream=stream,
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert [row["k"] for row in payload["batch"]["results"]] == [3]
        assert "batch engine seed-groups" in stream.getvalue()

    def test_bench_cli_no_batch_bench_fails_batch_floor(self, tmp_path):
        floors = tmp_path / "floors.json"
        floors.write_text(json.dumps({"batch_vs_fastpath_min_ratio": {"64": 3.0}}))
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "fastpath", "--no-protocols", "--no-store-bench",
                "--no-batch-bench",
                "--floors", str(floors), "--out", str(tmp_path / "bench.json"),
            ],
            stream=stream,
        )
        assert code == 1
        assert "no batch benchmark block" in stream.getvalue()


class TestScheduleBench:
    """The guided-vs-exhaustive schedule-search suite and its floor."""

    def _block(self):
        from repro.analysis.benchmark import run_schedule_benchmarks

        return run_schedule_benchmarks(repeats=1)

    def test_block_shape_and_agreement(self):
        block = self._block()
        assert block["exhaustive_nodes"] > block["guided_nodes_to_best"] > 0
        assert block["exhaustive_seconds"] > 0
        assert block["guided_seconds_to_best"] > 0
        assert block["node_speedup"] > 1.0
        assert block["worst_steps"] > 0
        # The gate's integrity half: both searches drained the tree and
        # reached the same worst case.
        assert block["agrees"] is True

    def test_schedule_floor_passes_and_fails(self):
        payload = {"schedules": self._block()}
        measured = payload["schedules"]["node_speedup"]
        assert check_floors(
            payload, {"schedule_search_min_speedup": measured / 2.0}
        ) == []
        violations = check_floors(
            payload, {"schedule_search_min_speedup": measured * 100.0}
        )
        assert len(violations) == 1
        assert "below the floor" in violations[0]

    def test_disagreement_is_a_violation_even_above_the_floor(self):
        block = self._block()
        block["agrees"] = False
        violations = check_floors(
            {"schedules": block}, {"schedule_search_min_speedup": 1.0}
        )
        assert len(violations) == 1
        assert "disagreed" in violations[0]

    def test_missing_schedules_block_is_a_violation(self):
        violations = check_floors({}, {"schedule_search_min_speedup": 3.0})
        assert len(violations) == 1
        assert "no schedule-search benchmark block" in violations[0]
        assert "--no-schedule-bench" in violations[0]

    def test_block_without_speedup_is_a_violation(self):
        payload = {"schedules": {"agrees": True}}
        violations = check_floors(payload, {"schedule_search_min_speedup": 3.0})
        assert len(violations) == 1
        assert "node_speedup" in violations[0]

    def test_checked_in_floors_gate_the_schedule_search(self):
        from pathlib import Path

        floor_path = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"
        floors = load_floors(str(floor_path))
        assert floors["schedule_search_min_speedup"] >= 3.0

    def test_render_table_mentions_schedule_search(self):
        payload = tiny_payload()
        payload["schedules"] = self._block()
        text = render_bench_table(payload)
        assert "schedule search" in text
        assert "fewer nodes" in text

    def test_bench_cli_writes_schedules_block(self, tmp_path):
        out = tmp_path / "BENCH_engines.json"
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "fastpath", "--no-protocols", "--no-store-bench",
                "--no-batch-bench", "--no-trace-bench",
                "--out", str(out),
            ],
            stream=stream,
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schedules"]["agrees"] is True
        assert payload["schedules"]["node_speedup"] > 1.0
        assert "guided vs exhaustive schedule search" in stream.getvalue()

    def test_bench_cli_no_schedule_bench_fails_schedule_floor(self, tmp_path):
        floors = tmp_path / "floors.json"
        floors.write_text(json.dumps({"schedule_search_min_speedup": 3.0}))
        stream = io.StringIO()
        code = main(
            [
                "bench", "--sizes", "8", "--repeats", "1",
                "--engines", "fastpath", "--no-protocols", "--no-store-bench",
                "--no-batch-bench", "--no-trace-bench", "--no-schedule-bench",
                "--floors", str(floors), "--out", str(tmp_path / "bench.json"),
            ],
            stream=stream,
        )
        assert code == 1
        assert "no schedule-search benchmark block" in stream.getvalue()
