"""Smoke tests for the experiment drivers (small parameters).

Each driver must run end to end and exhibit the shape asserted in
EXPERIMENTS.md; the benches run the full-size versions.
"""

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    experiment_e01_tree_broadcast,
    experiment_e02_tree_lowerbound,
    experiment_e03_dag_broadcast,
    experiment_e04_commodity_lowerbound,
    experiment_e05_general_broadcast,
    experiment_e06_labeling,
    experiment_e07_label_lowerbound,
    experiment_e08_nontermination,
    experiment_e09_split_ablation,
    experiment_e10_eager_ablation,
    experiment_e11_mapping,
    experiment_e12_gap,
)


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 20)}


def test_e16_all_schedulers_terminate():
    from repro.analysis.experiments import experiment_e16_scheduler_sensitivity

    rows = experiment_e16_scheduler_sensitivity(n_internal=15)
    assert all(row["terminated"] for row in rows)
    assert max(row["vs_best"] for row in rows) >= 1.0


def test_e15_state_space_ordering():
    from repro.analysis.experiments import experiment_e15_state_space

    rows = experiment_e15_state_space(sizes=(10, 20))
    for row in rows:
        # Interval-protocol states dominate the scalar protocols' states —
        # the memory cost of identifiable commodity.
        assert row["general_state_bits"] > row["dag_state_bits"]
        assert row["labeling_state_bits"] > 0


def test_e13_rounds_match_longest_paths():
    from repro.analysis.experiments import experiment_e13_round_complexity

    rows = experiment_e13_round_complexity(sizes=(25, 50))
    for row in rows:
        assert row["tree_rounds"] == row["tree_longest_path"]
        assert row["dag_rounds"] == row["dag_longest_path"]
        assert row["general_rounds"] <= row["general_V"]


def test_e01_ratio_flat():
    rows = experiment_e01_tree_broadcast(sizes=(50, 100, 200), seeds=(0,))
    ratios = [row["ratio"] for row in rows]
    assert max(ratios) / min(ratios) < 2.0


def test_e02_alphabet():
    rows = experiment_e02_tree_lowerbound(ns=(4, 16, 64))
    assert all(row["at_least_n"] for row in rows)
    assert all(row["measured_bits"] >= row["huffman_floor_bits"] for row in rows)


def test_e03_one_message_per_edge():
    rows = experiment_e03_dag_broadcast(sizes=(20, 40), seeds=(0,))
    assert all(row["one_msg_per_edge"] for row in rows)
    assert all(row["ratio"] < 1.0 for row in rows)


def test_e04_subset_sums():
    rows = experiment_e04_commodity_lowerbound(ns=(2, 4), subset_n=4)
    row4 = next(row for row in rows if row["n"] == 4)
    assert row4["distinct_sums"] == 16
    assert row4["chain_(1)_holds"]


def test_e05_within_bound():
    rows = experiment_e05_general_broadcast(sizes=(10, 20), seeds=(0,))
    assert all(row["ratio"] < 1.0 for row in rows)


def test_e06_labels_valid():
    rows = experiment_e06_labeling(sizes=(10, 20), seeds=(0,))
    assert all(row["all_labeled"] and row["labels_disjoint"] for row in rows)


def test_e07_pruning():
    rows = experiment_e07_label_lowerbound(cases=((2, 4), (2, 8)))
    assert all(row["pruning_identical"] for row in rows if row["pruning_identical"] != "")
    bits = [row["leaf_label_bits"] for row in rows]
    assert bits[0] < bits[1]


def test_e08_no_false_terminations():
    rows = experiment_e08_nontermination(sizes=(8,), seeds=(0,))
    assert all(row["false_terminations"] == 0 for row in rows)
    assert all(row["bad_graph_runs"] > 0 for row in rows)


def test_e09_gap():
    rows = experiment_e09_split_ablation(sizes=(50, 200))
    assert all(row["bits_ratio"] > 1.5 for row in rows)
    assert rows[-1]["bits_ratio"] >= rows[0]["bits_ratio"]


def test_e10_blowup():
    rows = experiment_e10_eager_ablation(depths=(4, 8))
    assert all(row["waiting_is_E"] for row in rows)
    assert rows[1]["eager_messages"] > 10 * rows[1]["waiting_messages"]


def test_e11_mapping_exact():
    rows = experiment_e11_mapping(sizes=(10,), seeds=(0, 1))
    assert all(row["exact_reconstructions"] == row["runs"] for row in rows)


def test_e12_gap_grows():
    rows = experiment_e12_gap(heights=(4, 16))
    assert rows[1]["gap_factor"] > rows[0]["gap_factor"]
    assert all(row["directed_label_bits"] > row["undirected_label_bits"] for row in rows)


def test_experiments_engine_shim_warns_but_still_works():
    """The deprecated context manager must keep steering drivers for one
    release (benchmarks migrated to explicit ``engine=...``)."""
    from repro.analysis.experiments import experiments_engine

    with pytest.warns(DeprecationWarning):
        with experiments_engine("fastpath"):
            shimmed = experiment_e05_general_broadcast(sizes=(10,), seeds=(0,))
    explicit = experiment_e05_general_broadcast(sizes=(10,), seeds=(0,), engine="fastpath")
    assert shimmed == explicit


def test_engine_kwarg_beats_shim():
    from repro.analysis.experiments import experiments_engine

    with pytest.warns(DeprecationWarning):
        with experiments_engine("synchronous"):  # would break E5 if applied
            rows = experiment_e05_general_broadcast(
                sizes=(10,), seeds=(0,), engine="async"
            )
    assert rows
