"""CLI store wiring: --store/--no-store flags, summary fields, store subcommands."""

import io
import json
import os

import pytest

from repro.cli import main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


def summary_line(text, prefix):
    lines = [l for l in text.splitlines() if l.startswith(prefix + " ")]
    assert len(lines) == 1, f"expected one {prefix} line, got {len(lines)}"
    return json.loads(lines[0][len(prefix) + 1 :])


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "specs.json"
    path.write_text(
        json.dumps(
            [
                {
                    "graph": "random-grounded-tree",
                    "graph_params": {"num_internal": 8},
                    "protocol": "tree-broadcast",
                    "seed": seed,
                }
                for seed in range(3)
            ]
        )
    )
    return str(path)


class TestBatchStoreFlags:
    def test_cold_then_warm(self, tmp_path, spec_file):
        store = str(tmp_path / "store")
        code, text = run_cli(["batch", spec_file, "--serial", "--store", store])
        assert code == 0
        cold = summary_line(text, "BATCH_SUMMARY")
        assert cold["store"] == os.path.abspath(store)
        assert cold["store_hits"] == 0 and cold["store_misses"] == 3
        assert cold["store_hit_rate"] == 0.0

        code, text = run_cli(["batch", spec_file, "--serial", "--store", store])
        warm = summary_line(text, "BATCH_SUMMARY")
        assert warm["executed"] == 0
        assert warm["store_hits"] == 3 and warm["store_hit_rate"] == 1.0

    def test_no_store_escape_hatch(self, tmp_path, spec_file, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        code, text = run_cli(["batch", spec_file, "--serial", "--no-store"])
        summary = summary_line(text, "BATCH_SUMMARY")
        assert summary["store"] is None
        assert summary["store_hit_rate"] is None
        assert not (tmp_path / "store").exists()

    def test_env_var_attaches_store(self, tmp_path, spec_file, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        code, text = run_cli(["batch", spec_file, "--serial"])
        summary = summary_line(text, "BATCH_SUMMARY")
        assert summary["store"] == str(tmp_path / "store")
        assert summary["store_misses"] == 3


class TestExperimentStoreFlags:
    def test_warm_experiment_all_hits(self, tmp_path):
        store = str(tmp_path / "store")
        args = ["experiment", "e01", "--quick", "--serial", "--store", store]
        code, text = run_cli(args + ["--out", str(tmp_path / "a")])
        cold = summary_line(text, "EXPERIMENT_SUMMARY")
        assert cold["store_misses"] == cold["total_specs"] > 0

        # fresh artifact dir: only the store can serve it
        code, text = run_cli(args + ["--out", str(tmp_path / "b")])
        warm = summary_line(text, "EXPERIMENT_SUMMARY")
        assert warm["executed"] == 0
        assert warm["store_hit_rate"] == 1.0
        assert warm["store_hits"] == warm["total_specs"]


class TestRunSpecStore:
    def test_single_spec_served_from_store(self, tmp_path):
        spec_path = tmp_path / "one.json"
        spec_path.write_text(
            json.dumps(
                {
                    "graph": "random-grounded-tree",
                    "graph_params": {"num_internal": 8},
                    "protocol": "tree-broadcast",
                    "seed": 5,
                }
            )
        )
        store = str(tmp_path / "store")
        code, text_cold = run_cli(["run", "--spec", str(spec_path), "--store", store])
        assert code == 0 and "served from store" not in text_cold
        code, text_warm = run_cli(["run", "--spec", str(spec_path), "--store", store])
        assert code == 0 and "(served from store)" in text_warm

        def record_json(text):
            start = text.index("{")
            return json.loads(text[start:])

        assert record_json(text_warm) == record_json(text_cold)


class TestStoreSubcommands:
    @pytest.fixture()
    def populated(self, tmp_path, spec_file):
        store = str(tmp_path / "store")
        run_cli(["batch", spec_file, "--serial", "--store", store])
        return store

    def test_stats(self, populated):
        code, text = run_cli(["store", "stats", "--store", populated])
        assert code == 0
        stats = json.loads(text[: text.rindex("}") + 1])
        assert stats["records"] == 3

    def test_ls(self, populated):
        code, text = run_cli(["store", "ls", "--store", populated])
        assert code == 0
        assert "3 record(s)" in text
        code, text = run_cli(["store", "ls", "--store", populated, "--limit", "1"])
        assert "2 more" in text

    def test_verify_clean(self, populated):
        code, text = run_cli(["store", "verify", "--store", populated])
        assert code == 0
        assert "is clean" in text

    def test_verify_detects_corruption(self, populated):
        shards = os.path.join(populated, "shards")
        victim = os.path.join(shards, sorted(os.listdir(shards))[0])
        with open(victim, "r+b") as handle:
            data = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(data[: len(data) // 2])
        code, text = run_cli(["store", "verify", "--store", populated])
        assert code == 1
        assert "corruption detected" in text

    def test_gc(self, populated):
        code, text = run_cli(["store", "gc", "--store", populated])
        assert code == 0
        assert "removed 0 record(s)" in text
        code, text = run_cli(
            ["store", "gc", "--store", populated, "--keep-days", "0"]
        )
        assert code == 0
        assert "removed 3 record(s)" in text


class TestStoreErrors:
    def test_store_command_without_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "stats"], stream=io.StringIO())
        message = excinfo.value.code
        assert isinstance(message, str) and "no result store" in message
        assert "\n" not in message

    def test_ls_rejects_non_hex_prefix(self, tmp_path):
        store = str(tmp_path / "store")
        run_cli(["store", "stats", "--store", store])  # creates the store
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "ls", "zz!", "--store", store], stream=io.StringIO())
        assert isinstance(excinfo.value.code, str)
