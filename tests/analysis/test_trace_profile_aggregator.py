"""The trace-profile white-box aggregator: campaign rows from live traces."""

import pytest

from repro.api import AGGREGATORS, ensure_registered
from repro.api.campaign import ExperimentSpec, run_experiment


def _experiment(**base_extra):
    base = {
        "graph": "random-dag",
        "graph_params": {"num_internal": 8},
        "protocol": "dag-broadcast",
        "record_trace": True,
        **base_extra,
    }
    return ExperimentSpec(
        name="trace-profile-test",
        title="trace profile rows",
        base=base,
        axes={"seed": [0, 1, 2]},
        aggregator="trace-profile",
    )


class TestTraceProfileAggregator:
    def test_registered_and_white_box(self):
        ensure_registered()
        aggregate = AGGREGATORS.get("trace-profile")
        assert getattr(aggregate, "white_box", False)

    def test_one_row_per_run_with_profile_columns(self):
        result = run_experiment(_experiment(), parallel=False)
        assert [row["seed"] for row in result.rows] == [0, 1, 2]
        for row in result.rows:
            assert row["protocol"] == "dag-broadcast"
            assert row["events"] > 0
            assert row["total_bits"] > 0
            assert row["max_message_bits"] >= row["mean_message_bits"] > 0
            assert row["max_edge_messages"] >= 1
            assert row["max_vertex_load"] >= 1
            assert row["termination_step"] is not None
            assert row["V"] > 0 and row["E"] > 0

    def test_rows_match_run_metrics(self):
        from repro.api import RunSpec, execute_spec

        result = run_experiment(_experiment(), parallel=False)
        for row in result.rows:
            record = execute_spec(
                RunSpec(
                    graph="random-dag",
                    graph_params={"num_internal": 8},
                    protocol="dag-broadcast",
                    seed=row["seed"],
                )
            )
            assert row["events"] == record.metrics["total_messages"]
            assert row["total_bits"] == record.metrics["total_bits"]
            assert row["termination_step"] == record.metrics["termination_step"]

    def test_untraced_spec_is_a_clear_error(self):
        experiment = _experiment(record_trace=False)
        with pytest.raises(ValueError, match="record_trace"):
            run_experiment(experiment, parallel=False)
