"""Tests for the ASCII interval visualiser."""

import pytest

from repro.analysis.visualize import render_label_map, render_union
from repro.core.dyadic import Dyadic
from repro.core.intervals import EMPTY_UNION, UNIT_UNION, Interval, IntervalUnion


def half_union(which: str) -> IntervalUnion:
    if which == "low":
        return IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 1)))
    return IntervalUnion.of(Interval(Dyadic(1, 1), Dyadic(1)))


class TestRenderUnion:
    def test_full_bar(self):
        bar = render_union(UNIT_UNION, width=8)
        assert bar == "|████████|"

    def test_empty_bar(self):
        assert render_union(EMPTY_UNION, width=8) == "|        |"

    def test_halves(self):
        low = render_union(half_union("low"), width=8)
        high = render_union(half_union("high"), width=8)
        assert low == "|████    |"
        assert high == "|    ████|"

    def test_custom_fill(self):
        assert render_union(UNIT_UNION, width=4, fill="#") == "|####|"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_union(UNIT_UNION, width=0)

    def test_non_power_of_two_width(self):
        bar = render_union(half_union("low"), width=5)
        assert bar.count("█") == 2  # midpoints 0.1, 0.3 inside; 0.5, 0.7, 0.9 out


class TestRenderLabelMap:
    def test_rows_sorted_by_position(self):
        labels = {7: half_union("high"), 3: half_union("low")}
        text = render_label_map(labels, width=8)
        lines = text.splitlines()
        assert "vertex   3" in lines[0]
        assert "vertex   7" in lines[1]

    def test_names_override(self):
        labels = {1: half_union("low")}
        text = render_label_map(labels, names={1: "sensor-A "})
        assert text.startswith("sensor-A ")

    def test_real_labeling_run_renders_disjoint(self):
        from repro.core.labeling import LabelAssignmentProtocol, extract_labels
        from repro.graphs.generators import random_digraph
        from repro.network.simulator import run_protocol

        net = random_digraph(8, seed=4)
        result = run_protocol(net, LabelAssignmentProtocol())
        labels = extract_labels(result.states)
        text = render_label_map(labels, width=32)
        assert len(text.splitlines()) == len(labels)
