"""CLI schedule wiring: search, info, replay and the exit-code contract."""

import io
import json
import os

import pytest

from repro.cli import main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "graph": "random-dag",
                "graph_params": {"num_internal": 3, "seed": 0},
                "protocol": "general-broadcast",
                "seed": 0,
            }
        ),
        encoding="utf-8",
    )
    return str(path)


@pytest.fixture()
def cert_file(tmp_path, spec_file):
    out = str(tmp_path / "worst.json")
    code, _ = run_cli(
        ["schedule", "search", spec_file, "--max-nodes", "20000",
         "-o", out, "--no-store"]
    )
    assert code == 0
    return out


class TestScheduleSearch:
    def test_search_writes_certificate(self, tmp_path, spec_file):
        out = str(tmp_path / "cert.json")
        code, text = run_cli(
            ["schedule", "search", spec_file, "--max-nodes", "20000",
             "-o", out, "--no-store"]
        )
        assert code == 0
        assert os.path.exists(out)
        assert "SEARCH [max-steps]" in text
        assert f"certificate written to {out}" in text
        payload = json.loads(open(out, encoding="utf-8").read())
        assert payload["objective"] == "max-steps"
        assert payload["steps"] == len(payload["deliveries"])

    def test_search_into_store(self, tmp_path, spec_file):
        store = str(tmp_path / "store")
        code, text = run_cli(
            ["schedule", "search", spec_file, "--max-nodes", "20000",
             "--store", store]
        )
        assert code == 0
        assert "certificate stored at" in text
        schedules = os.listdir(os.path.join(store, "schedules"))
        assert len(schedules) == 1

    def test_list_objectives(self, spec_file):
        code, text = run_cli(
            ["schedule", "search", spec_file, "--list-objectives", "--no-store"]
        )
        assert code == 0
        for name in ("max-steps", "max-bits", "reach-termination"):
            assert name in text

    def test_unknown_objective_is_a_one_line_error(self, spec_file):
        with pytest.raises(SystemExit, match="unknown objective"):
            run_cli(
                ["schedule", "search", spec_file, "--objective", "nope",
                 "--no-store"]
            )

    def test_missing_spec_file_is_a_one_line_error(self):
        with pytest.raises(SystemExit, match="cannot read"):
            run_cli(["schedule", "search", "/does/not/exist.json", "--no-store"])


class TestScheduleInfo:
    def test_info_summarises_claims(self, cert_file):
        code, text = run_cli(["schedule", "info", cert_file])
        assert code == 0
        info = json.loads(text)
        assert info["objective"] == "max-steps"
        assert info["cert_id"]
        # The script is summarised to its length, not dumped.
        assert isinstance(info["deliveries"], int)

    def test_info_on_junk_is_a_one_line_error(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit, match="not valid JSON"):
            run_cli(["schedule", "info", str(junk)])


class TestScheduleReplay:
    def test_intact_certificate_replays_exit_0(self, cert_file):
        code, text = run_cli(["schedule", "replay", cert_file])
        assert code == 0
        assert "CERTIFICATE OK" in text

    def test_tampered_certificate_fails_exit_1(self, tmp_path, cert_file):
        payload = json.loads(open(cert_file, encoding="utf-8").read())
        payload["steps"] += 1
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(payload), encoding="utf-8")
        code, text = run_cli(["schedule", "replay", str(tampered)])
        assert code == 1
        assert "CERTIFICATE FAILED" in text
