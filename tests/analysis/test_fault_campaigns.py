"""The registered fault campaigns e17 (loss) and e18 (churn)."""

import pytest

from repro.analysis.experiments import (
    experiment_e17_loss_termination,
    experiment_e18_churn_labeling,
)
from repro.api import EXPERIMENTS, ensure_registered
from repro.api.campaign import ExperimentSpec, run_experiment


class TestE17LossTermination:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_experiment("e17", scale="quick", parallel=False).rows

    def test_registered_as_grid(self):
        ensure_registered()
        assert isinstance(EXPERIMENTS.get("e17"), ExperimentSpec)

    def test_one_row_per_loss_rate(self, rows):
        assert [row["drop_probability"] for row in rows] == [0.0, 0.1, 0.3]

    def test_fault_free_baseline_always_terminates(self, rows):
        baseline = rows[0]
        assert baseline["termination_rate"] == 1.0
        assert baseline["dropped_mean"] == 0.0

    def test_loss_degrades_termination_but_fails_safe(self, rows):
        # with loss, termination can only get rarer — and whatever does not
        # terminate must be quiescent, never budget-exhausted
        rates = [row["termination_rate"] for row in rows]
        assert rates[0] >= rates[-1]
        for row in rows[1:]:
            assert row["runs"] == row["terminated"] + row["quiescent"]

    def test_driver_veneer_matches_registry(self, rows):
        veneer = experiment_e17_loss_termination(
            rates=(0.0, 0.1, 0.3), seeds=(0, 1, 2)
        )
        assert veneer == rows


class TestE18ChurnLabeling:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_experiment("e18", scale="quick", parallel=False).rows

    def test_scenarios_in_grid_order(self, rows):
        assert [row["scenario"] for row in rows] == [
            "baseline",
            "baseline",
            "brief-leave",
            "brief-leave",
            "permanent-leave",
            "permanent-leave",
        ]

    def test_baseline_terminates_without_churn(self, rows):
        for row in rows:
            if row["scenario"] == "baseline":
                assert row["terminated"]
                assert row["churn_events"] == 0
                assert row["churned_deliveries"] == 0

    def test_churn_scenarios_swallow_deliveries(self, rows):
        churned = [row for row in rows if row["scenario"] != "baseline"]
        assert all(row["churned_deliveries"] > 0 for row in churned)

    def test_safety_survives_churn_everywhere(self, rows):
        assert all(row["labels_disjoint"] for row in rows)
        assert all(row["coverage_safe"] for row in rows)

    def test_rejoin_counted_for_brief_leave(self, rows):
        brief = [row for row in rows if row["scenario"] == "brief-leave"]
        assert all(row["rejoins"] >= 1 for row in brief)

    def test_driver_veneer_matches_registry(self, rows):
        # the veneer runs the full scenario set; quick drops the heavy one
        veneer = experiment_e18_churn_labeling(seeds=(0, 1))
        by_key = {(row["scenario"], row["seed"]): row for row in veneer}
        for row in rows:
            assert by_key[(row["scenario"], row["seed"])] == row

    def test_campaigns_deterministic(self):
        first = run_experiment("e18", scale="quick", parallel=False).rows
        second = run_experiment("e18", scale="quick", parallel=False).rows
        assert first == second

    def test_engine_override_equivalence(self):
        async_rows = run_experiment("e17", scale="quick", parallel=False, engine="async").rows
        fast_rows = run_experiment("e17", scale="quick", parallel=False, engine="fastpath").rows
        assert async_rows == fast_rows
