"""Differential tests: campaign rows == pre-redesign imperative driver rows.

The campaign redesign re-expressed the simulation-backed experiment
drivers as registered :class:`~repro.api.campaign.ExperimentSpec` grids
plus named aggregators.  These tests freeze the *pre-redesign* imperative
implementations (verbatim copies of the old ``analysis/experiments.py``
loops, with the deleted ``_ENGINE_STACK`` pinned to its ``"async"``
default) and assert the registered campaigns reproduce their row dicts
exactly — keys, values, ints-vs-floats, order — at reduced sizes.

If a campaign definition or aggregator drifts, the mismatching row pair
is the diff.
"""

import math

from repro.api import BatchRunner, RunSpec, execute_spec_full
from repro.analysis import experiments as drivers
from repro.core.complexity import (
    dag_broadcast_total_bits_bound,
    general_broadcast_total_bits_bound,
    tree_broadcast_total_bits_bound,
)
from repro.graphs.properties import longest_path_length
from repro.network.scheduler import standard_scheduler_specs

_RUNNER = BatchRunner(parallel=False)


def _tree_spec(n, seed, protocol="tree-broadcast", **kw):
    kw.setdefault("engine", "async")
    return RunSpec(
        graph="random-grounded-tree",
        graph_params={"num_internal": n},
        protocol=protocol,
        seed=seed,
        **kw,
    )


def _digraph_spec(n, seed, protocol, **kw):
    kw.setdefault("engine", "async")
    return RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": n},
        protocol=protocol,
        seed=seed,
        **kw,
    )


# ----------------------------------------------------------------------
# frozen imperative references (pre-redesign driver bodies)
# ----------------------------------------------------------------------


def imperative_e01(sizes, seeds):
    rows = []
    for n in sizes:
        specs = [_tree_spec(n, seed) for seed in seeds]
        records = _RUNNER.run(specs)
        assert all(record.terminated for record in records)
        bits = [record.metrics["total_bits"] for record in records]
        msgs = [record.metrics["total_messages"] for record in records]
        maxmsg = [record.metrics["max_message_bits"] for record in records]
        bound = tree_broadcast_total_bits_bound(specs[-1].build_graph())
        rows.append(
            {
                "n_internal": n,
                "E": records[-1].num_edges,
                "messages": max(msgs),
                "total_bits": max(bits),
                "max_msg_bits": max(maxmsg),
                "bound_E_logE": round(bound),
                "ratio": max(bits) / bound,
            }
        )
    return rows


def imperative_e03(sizes, seeds):
    specs = [
        RunSpec(
            graph="random-dag",
            graph_params={"num_internal": n},
            protocol="dag-broadcast",
            seed=seed,
            engine="async",
        )
        for n in sizes
        for seed in seeds[:1]
    ]
    rows = []
    for spec, record in zip(specs, _RUNNER.run(specs)):
        assert record.terminated
        bound = dag_broadcast_total_bits_bound(spec.build_graph())
        rows.append(
            {
                "n_internal": spec.graph_params["num_internal"],
                "E": record.num_edges,
                "messages": record.metrics["total_messages"],
                "one_msg_per_edge": record.metrics["total_messages"] == record.num_edges,
                "total_bits": record.metrics["total_bits"],
                "max_msg_bits": record.metrics["max_message_bits"],
                "bound_E2": round(bound),
                "ratio": record.metrics["total_bits"] / bound,
            }
        )
    return rows


def imperative_e05(sizes, seeds):
    specs = [
        _digraph_spec(n, seed, "general-broadcast") for n in sizes for seed in seeds[:1]
    ]
    rows = []
    for spec, record in zip(specs, _RUNNER.run(specs)):
        assert record.terminated
        bound = general_broadcast_total_bits_bound(spec.build_graph())
        rows.append(
            {
                "n_internal": spec.graph_params["num_internal"],
                "V": record.num_vertices,
                "E": record.num_edges,
                "messages": record.metrics["total_messages"],
                "total_bits": record.metrics["total_bits"],
                "max_msg_bits": record.metrics["max_message_bits"],
                "max_edge_bits": record.metrics["max_edge_bits"],
                "bound_E2VlogD": round(bound),
                "ratio": record.metrics["total_bits"] / bound,
            }
        )
    return rows


def imperative_e08(sizes, seeds):
    protocols = (
        ("general-broadcast", "general-broadcast"),
        ("label-assignment", "label-assignment"),
        ("mapping", "topology-mapping"),
    )
    rows = []
    for display_name, protocol in protocols:
        specs = [
            _digraph_spec(
                n,
                seed,
                protocol,
                graph_transforms=(transform,),
                scheduler=sched_name,
                scheduler_params=sched_params,
            )
            for n in sizes
            for seed in seeds
            for transform in ("with-dead-end-vertex", "with-stranded-cycle")
            for sched_name, sched_params in standard_scheduler_specs(random_seeds=1)
        ]
        records = _RUNNER.run(specs)
        rows.append(
            {
                "protocol": display_name,
                "bad_graph_runs": len(records),
                "false_terminations": sum(1 for r in records if r.terminated),
            }
        )
    return rows


def imperative_e09(sizes, seed):
    rows = []
    for n in sizes:
        naive, pow2 = _RUNNER.run(
            [_tree_spec(n, seed, "naive-tree-broadcast"), _tree_spec(n, seed)]
        )
        assert naive.terminated and pow2.terminated
        rows.append(
            {
                "n_internal": n,
                "E": naive.num_edges,
                "naive_bits": naive.metrics["total_bits"],
                "pow2_bits": pow2.metrics["total_bits"],
                "naive_max_msg": naive.metrics["max_message_bits"],
                "pow2_max_msg": pow2.metrics["max_message_bits"],
                "bits_ratio": naive.metrics["total_bits"] / pow2.metrics["total_bits"],
            }
        )
    return rows


def imperative_e10(depths):
    rows = []
    for depth in depths:
        specs = [
            RunSpec(
                graph="layered-diamond-dag",
                graph_params={"depth": depth},
                protocol=protocol,
                engine="async",
            )
            for protocol in ("eager-dag-broadcast", "dag-broadcast")
        ]
        eager, waiting = _RUNNER.run(specs)
        assert eager.terminated and waiting.terminated
        rows.append(
            {
                "depth": depth,
                "E": eager.num_edges,
                "eager_messages": eager.metrics["total_messages"],
                "waiting_messages": waiting.metrics["total_messages"],
                "waiting_is_E": waiting.metrics["total_messages"] == waiting.num_edges,
                "eager_max_msg_bits": eager.metrics["max_message_bits"],
                "waiting_max_msg_bits": waiting.metrics["max_message_bits"],
            }
        )
    return rows


def imperative_e13(sizes, seeds):
    rows = []
    for n in sizes:
        for seed in seeds[:1]:
            tree_spec = _tree_spec(n, seed, engine="synchronous")
            dag_spec = RunSpec(
                graph="random-dag",
                graph_params={"num_internal": n},
                protocol="dag-broadcast",
                seed=seed,
                engine="synchronous",
            )
            dig_spec = _digraph_spec(
                min(n, 60), seed, "general-broadcast", engine="synchronous"
            )
            specs = [tree_spec, dag_spec, dig_spec]
            tree_run, dag_run, dig_run = _RUNNER.run(specs)
            assert tree_run.terminated and dag_run.terminated and dig_run.terminated
            rows.append(
                {
                    "n_internal": n,
                    "tree_rounds": tree_run.metrics["termination_round"],
                    "tree_longest_path": longest_path_length(tree_spec.build_graph()),
                    "dag_rounds": dag_run.metrics["termination_round"],
                    "dag_longest_path": longest_path_length(dag_spec.build_graph()),
                    "general_rounds": dig_run.metrics["termination_round"],
                    "general_V": dig_run.num_vertices,
                    "general_rounds/V": dig_run.metrics["termination_round"]
                    / dig_run.num_vertices,
                }
            )
    return rows


def imperative_e15(sizes, seed):
    workloads = (
        ("tree", "random-grounded-tree", "tree-broadcast"),
        ("dag", "random-dag", "dag-broadcast"),
        ("general", "random-digraph", "general-broadcast"),
        ("labeling", "random-digraph", "label-assignment"),
    )
    rows = []
    for n in sizes:
        specs = [
            RunSpec(
                graph=graph,
                graph_params={"num_internal": n},
                protocol=protocol,
                seed=seed,
                track_state_bits=True,
                engine="async",
            )
            for _, graph, protocol in workloads
        ]
        records = _RUNNER.run(specs)
        assert all(record.terminated for record in records)
        measurements = {
            name: record.metrics["max_state_bits"]
            for (name, _, _), record in zip(workloads, records)
        }
        rows.append(
            {
                "n_internal": n,
                "tree_state_bits": measurements["tree"],
                "dag_state_bits": measurements["dag"],
                "general_state_bits": measurements["general"],
                "labeling_state_bits": measurements["labeling"],
                "general/dag_ratio": round(
                    measurements["general"] / max(1, measurements["dag"]), 1
                ),
            }
        )
    return rows


def imperative_e16(n_internal, seed):
    specs = [
        _digraph_spec(
            n_internal,
            seed,
            "general-broadcast",
            scheduler=sched_name,
            scheduler_params=sched_params,
        )
        for sched_name, sched_params in standard_scheduler_specs(random_seeds=2)
    ]
    rows = []
    for spec, record in zip(specs, _RUNNER.run(specs)):
        assert record.terminated, spec.scheduler
        rows.append(
            {
                "scheduler": spec.build_scheduler().name,
                "terminated": record.terminated,
                "messages": record.metrics["total_messages"],
                "total_bits": record.metrics["total_bits"],
                "msgs_at_termination": record.metrics["messages_at_termination"],
                "max_msg_bits": record.metrics["max_message_bits"],
            }
        )
    baseline = min(row["messages"] for row in rows)
    for row in rows:
        row["vs_best"] = round(row["messages"] / baseline, 2)
    return rows


def imperative_e06(sizes, seeds):
    from repro.core.complexity import label_length_bits_bound
    from repro.core.intervals import union_cost
    from repro.core.labeling import extract_labels, labels_pairwise_disjoint

    rows = []
    for n in sizes:
        for seed in seeds[:1]:
            spec = _digraph_spec(n, seed, "label-assignment")
            record, result, net = execute_spec_full(spec)
            assert record.terminated
            labels = extract_labels(result.states)
            label_list = list(labels.values())
            disjoint = labels_pairwise_disjoint(label_list)
            max_bits = max(union_cost(label) for label in label_list)
            bound = label_length_bits_bound(net)
            rows.append(
                {
                    "n_internal": n,
                    "V": record.num_vertices,
                    "all_labeled": set(labels) == set(net.internal_vertices()),
                    "labels_disjoint": disjoint,
                    "max_label_bits": max_bits,
                    "bound_VlogD": round(bound),
                    "ratio": max_bits / bound,
                }
            )
    return rows


def imperative_e11(sizes, seeds):
    from repro.core.mapping import ROOT_MARKER, TERMINAL_MARKER

    rows = []
    for n in sizes:
        successes = 0
        runs = 0
        messages = 0
        bits = 0
        for seed in seeds:
            spec = _digraph_spec(n, seed, "topology-mapping")
            record, result, net = execute_spec_full(spec)
            runs += 1
            if record.terminated and result.output is not None:
                ident = {net.root: ROOT_MARKER, net.terminal: TERMINAL_MARKER}
                for v in net.internal_vertices():
                    ident[v] = result.states[v].base.label
                if result.output.matches_network(net, ident):
                    successes += 1
            messages = max(messages, record.metrics["total_messages"])
            bits = max(bits, record.metrics["total_bits"])
        rows.append(
            {
                "n_internal": n,
                "runs": runs,
                "exact_reconstructions": successes,
                "messages_max": messages,
                "total_bits_max": bits,
            }
        )
    return rows


def imperative_e12(heights):
    from repro.baselines.undirected import (
        DfsLabelingProtocol,
        UndirectedNetwork,
        run_undirected_protocol,
    )
    from repro.core.intervals import union_cost

    degree = 2
    rows = []
    for h in heights:
        spec = RunSpec(
            graph="pruned-tree",
            graph_params={"degree": degree, "height": h},
            protocol="label-assignment",
            engine="async",
        )
        record, directed, net = execute_spec_full(spec)
        assert record.terminated
        label = directed.states[2 + h].label
        assert label is not None
        directed_bits = union_cost(label)

        undirected = UndirectedNetwork.from_directed(net)
        dfs = run_undirected_protocol(undirected, DfsLabelingProtocol(), seed=0)
        assert dfs.finished
        max_label = max(state["label"] for state in dfs.states.values())
        undirected_bits = max(1, math.ceil(math.log2(max_label + 1)))
        rows.append(
            {
                "V": record.num_vertices,
                "directed_label_bits": directed_bits,
                "undirected_label_bits": undirected_bits,
                "gap_factor": directed_bits / undirected_bits,
            }
        )
    return rows


# ----------------------------------------------------------------------
# campaign == imperative, row for row
# ----------------------------------------------------------------------


def test_e01_rows_identical():
    assert drivers.experiment_e01_tree_broadcast(sizes=(50, 100), seeds=(0, 1)) == (
        imperative_e01((50, 100), (0, 1))
    )


def test_e03_rows_identical():
    assert drivers.experiment_e03_dag_broadcast(sizes=(20, 40), seeds=(0,)) == (
        imperative_e03((20, 40), (0,))
    )


def test_e05_rows_identical():
    assert drivers.experiment_e05_general_broadcast(sizes=(10, 20), seeds=(0,)) == (
        imperative_e05((10, 20), (0,))
    )


def test_e06_rows_identical():
    assert drivers.experiment_e06_labeling(sizes=(10, 20), seeds=(0,)) == (
        imperative_e06((10, 20), (0,))
    )


def test_e08_rows_identical():
    assert drivers.experiment_e08_nontermination(sizes=(8,), seeds=(0,)) == (
        imperative_e08((8,), (0,))
    )


def test_e09_rows_identical():
    assert drivers.experiment_e09_split_ablation(sizes=(50, 100)) == (
        imperative_e09((50, 100), 0)
    )


def test_e10_rows_identical():
    assert drivers.experiment_e10_eager_ablation(depths=(2, 4)) == imperative_e10((2, 4))


def test_e11_rows_identical():
    assert drivers.experiment_e11_mapping(sizes=(10,), seeds=(0, 1)) == (
        imperative_e11((10,), (0, 1))
    )


def test_e12_rows_identical():
    assert drivers.experiment_e12_gap(heights=(4, 8)) == imperative_e12((4, 8))


def test_e13_rows_identical():
    assert drivers.experiment_e13_round_complexity(sizes=(25, 50)) == (
        imperative_e13((25, 50), (0, 1))
    )


def test_e15_rows_identical():
    assert drivers.experiment_e15_state_space(sizes=(10, 20)) == imperative_e15(
        (10, 20), 0
    )


def test_e16_rows_identical():
    assert drivers.experiment_e16_scheduler_sensitivity(n_internal=15) == (
        imperative_e16(15, 0)
    )


def test_fastpath_engine_override_matches_async_rows():
    """Engine overrides change wall-clock, never rows (differential contract)."""
    assert drivers.experiment_e05_general_broadcast(
        sizes=(10, 20), seeds=(0,), engine="fastpath"
    ) == imperative_e05((10, 20), (0,))
