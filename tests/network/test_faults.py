"""Unit tests for the declarative fault-model layer (repro.network.faults)."""

import json

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import random_digraph, random_grounded_tree
from repro.network.faults import (
    ChurnFault,
    CrashFault,
    FAULTS,
    FaultSpec,
    FaultSpecError,
    OldestLastScheduler,
    StarveOneEdgeScheduler,
)
from repro.network.simulator import Outcome, run_protocol


class TestFaultSpecValidation:
    @pytest.mark.parametrize(
        "field", ["drop_probability", "duplicate_probability", "delay_probability"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5, "0.5", None, True])
    def test_bad_probability(self, field, value):
        with pytest.raises(FaultSpecError):
            FaultSpec(**{field: value})

    def test_bad_crash(self):
        with pytest.raises(FaultSpecError):
            CrashFault(vertex=-1)
        with pytest.raises(FaultSpecError):
            CrashFault(vertex=0, step=-3)

    def test_duplicate_crash_vertex(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(crashes=({"vertex": 2, "step": 1}, {"vertex": 2, "step": 5}))

    def test_bad_churn_interval(self):
        with pytest.raises(FaultSpecError):
            ChurnFault(vertex=2, leave_step=10, rejoin_step=10)

    def test_overlapping_churn_intervals(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(
                churn=(
                    {"vertex": 2, "leave_step": 5, "rejoin_step": 20},
                    {"vertex": 2, "leave_step": 10, "rejoin_step": 30},
                )
            )

    def test_sequential_churn_intervals_allowed(self):
        spec = FaultSpec(
            churn=(
                {"vertex": 2, "leave_step": 5, "rejoin_step": 20},
                {"vertex": 2, "leave_step": 25, "rejoin_step": 30},
            )
        )
        assert len(spec.churn) == 2

    def test_unknown_field(self):
        with pytest.raises(FaultSpecError):
            FaultSpec.from_dict({"drop_prob": 0.5})

    def test_vertex_out_of_range_rejected_at_build(self):
        net = random_grounded_tree(4, seed=0)
        spec = FaultSpec(crashes=(CrashFault(vertex=99, step=1),))
        with pytest.raises(FaultSpecError):
            spec.build(net, run_seed=0)


class TestFaultSpecRoundTrip:
    def test_full_round_trip(self):
        spec = FaultSpec(
            drop_probability=0.1,
            duplicate_probability=0.05,
            delay_probability=0.2,
            crashes=(CrashFault(vertex=3, step=10),),
            churn=(ChurnFault(vertex=4, leave_step=5, rejoin_step=50),),
            adversary="starve-one-edge",
            adversary_params={"edge_id": 2},
            seed=7,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        # through actual JSON text, too
        assert FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_dict_entries_normalise_to_dataclasses(self):
        spec = FaultSpec(
            crashes=({"vertex": 2, "step": 3},),
            churn=({"vertex": 3, "leave_step": 1, "rejoin_step": None},),
        )
        assert spec.crashes == (CrashFault(vertex=2, step=3),)
        assert spec.churn == (ChurnFault(vertex=3, leave_step=1, rejoin_step=None),)

    def test_with_seed(self):
        assert FaultSpec().with_seed(5).seed == 5


class TestDropInjection:
    def test_total_loss_goes_nowhere(self):
        net = random_grounded_tree(10, seed=0)
        faults = FaultSpec(drop_probability=1.0).build(net, run_seed=0)
        result = run_protocol(net, TreeBroadcastProtocol(), faults=faults)
        assert result.outcome is Outcome.QUIESCENT
        assert result.metrics.total_messages == 0
        assert faults.dropped >= 1

    def test_zero_rates_change_nothing(self):
        net = random_grounded_tree(20, seed=1)
        clean = run_protocol(net, TreeBroadcastProtocol())
        faults = FaultSpec().build(net, run_seed=0)
        faulty = run_protocol(net, TreeBroadcastProtocol(), faults=faults)
        assert faulty.metrics == clean.metrics
        assert faults.counters() == {
            "fault_dropped": 0,
            "fault_duplicated": 0,
            "fault_delayed": 0,
            "fault_crashed": 0,
            "fault_churned": 0,
            "fault_rejoined": 0,
        }

    def test_losses_never_cause_false_termination(self):
        for seed in range(5):
            net = random_digraph(12, seed=seed)
            faults = FaultSpec(drop_probability=0.3).build(net, run_seed=seed)
            result = run_protocol(net, GeneralBroadcastProtocol(), faults=faults)
            if not result.terminated:
                assert result.outcome is Outcome.QUIESCENT
            elif faults.dropped:
                assert result.states[net.terminal].covered().is_unit()


class TestDuplicationAndDelay:
    def test_duplication_inflates_message_count(self):
        net = random_digraph(10, seed=0)
        faults = FaultSpec(duplicate_probability=1.0).build(net, run_seed=0)
        result = run_protocol(net, GeneralBroadcastProtocol(), faults=faults)
        assert faults.duplicated > 0
        # interval unions are idempotent, so duplication is harmless to safety
        from repro.core.invariants import coverage_within_unit

        assert coverage_within_unit(result.states)

    def test_full_delay_cannot_livelock(self):
        net = random_grounded_tree(8, seed=0)
        faults = FaultSpec(delay_probability=1.0).build(net, run_seed=0)
        result = run_protocol(net, TreeBroadcastProtocol(), faults=faults)
        assert result.terminated
        assert faults.delayed > 0

    def test_delay_preserves_delivery_totals(self):
        net = random_grounded_tree(15, seed=2)
        clean = run_protocol(net, TreeBroadcastProtocol())
        faults = FaultSpec(delay_probability=0.4).build(net, run_seed=2)
        faulty = run_protocol(net, TreeBroadcastProtocol(), faults=faults)
        # deferral reorders but never loses: same messages, same termination
        assert faulty.metrics.total_messages == clean.metrics.total_messages
        assert faulty.terminated


class TestCrashAndChurn:
    def test_crashed_terminal_never_terminates(self):
        net = random_grounded_tree(10, seed=0)
        faults = FaultSpec(crashes=(CrashFault(vertex=net.terminal, step=0),)).build(
            net, run_seed=0
        )
        result = run_protocol(net, TreeBroadcastProtocol(), faults=faults)
        assert not result.terminated
        assert faults.crashed > 0

    def test_crash_step_after_quiescence_is_noop(self):
        net = random_grounded_tree(10, seed=0)
        clean = run_protocol(net, TreeBroadcastProtocol())
        faults = FaultSpec(
            crashes=(CrashFault(vertex=net.terminal, step=10**9),)
        ).build(net, run_seed=0)
        faulty = run_protocol(net, TreeBroadcastProtocol(), faults=faults)
        assert faulty.metrics == clean.metrics
        assert faults.crashed == 0

    def test_churned_vertex_resets_on_rejoin(self):
        net = random_digraph(10, seed=1)
        faults = FaultSpec(
            churn=(ChurnFault(vertex=3, leave_step=5, rejoin_step=30),)
        ).build(net, run_seed=1)
        result = run_protocol(net, LabelAssignmentProtocol(), faults=faults)
        assert faults.churned > 0
        # safety survives the reset
        from repro.core.invariants import coverage_within_unit, labels_disjoint_globally

        assert coverage_within_unit(result.states)
        assert labels_disjoint_globally(result.states)

    def test_counters_keys(self):
        net = random_grounded_tree(5, seed=0)
        faults = FaultSpec().build(net, run_seed=0)
        assert set(faults.counters()) == {
            "fault_dropped",
            "fault_duplicated",
            "fault_delayed",
            "fault_crashed",
            "fault_churned",
            "fault_rejoined",
        }


class TestDeterminism:
    def test_same_seed_same_run(self):
        net = random_digraph(12, seed=3)
        spec = FaultSpec(
            drop_probability=0.15, duplicate_probability=0.1, delay_probability=0.1
        )

        def run():
            faults = spec.build(net, run_seed=3)
            result = run_protocol(net, GeneralBroadcastProtocol(), faults=faults)
            return result.metrics, faults.counters()

        assert run() == run()

    def test_fault_seed_overrides_run_seed(self):
        net = random_digraph(12, seed=3)

        def run(fault_seed, run_seed):
            faults = FaultSpec(drop_probability=0.2, seed=fault_seed).build(
                net, run_seed=run_seed
            )
            result = run_protocol(net, GeneralBroadcastProtocol(), faults=faults)
            return result.metrics, faults.counters()

        # pinned fault seed: the run seed no longer matters
        assert run(9, 0) == run(9, 1)


class TestAdversaryStrategies:
    def test_registry_entries(self):
        assert "starve-one-edge" in FAULTS
        assert "oldest-last" in FAULTS

    def test_starve_one_edge_terminates(self):
        net = random_digraph(10, seed=0)
        for edge_id in (None, 0, net.num_edges - 1):
            scheduler = StarveOneEdgeScheduler(seed=1, edge_id=edge_id)
            result = run_protocol(net, GeneralBroadcastProtocol(), scheduler)
            assert result.terminated
            assert scheduler.target_edge is not None

    def test_starve_one_edge_bad_edge(self):
        net = random_grounded_tree(4, seed=0)
        scheduler = StarveOneEdgeScheduler(edge_id=10**6)
        with pytest.raises(FaultSpecError):
            scheduler.bind(net)

    def test_oldest_last_terminates(self):
        net = random_digraph(10, seed=0)
        result = run_protocol(net, GeneralBroadcastProtocol(), OldestLastScheduler())
        assert result.terminated

    def test_adversary_via_fault_spec(self):
        net = random_digraph(10, seed=2)
        faults = FaultSpec(adversary="starve-one-edge").build(net, run_seed=2)
        assert isinstance(faults.adversary, StarveOneEdgeScheduler)
        result = run_protocol(net, GeneralBroadcastProtocol(), faults.adversary, faults=faults)
        assert result.terminated
