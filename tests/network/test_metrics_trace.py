"""Tests for metrics collection and execution traces."""

from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.constructions import caterpillar_gn
from repro.graphs.generators import path_network
from repro.network.metrics import MetricsCollector
from repro.network.simulator import run_protocol
from repro.network.trace import Trace


class TestMetricsCollector:
    def test_delivery_accounting(self):
        c = MetricsCollector(num_edges=3)
        c.record_delivery(0, 10)
        c.record_delivery(0, 5)
        c.record_delivery(2, 20)
        m = c.freeze(steps=3)
        assert m.total_messages == 3
        assert m.total_bits == 35
        assert m.max_message_bits == 20
        assert m.max_edge_bits == 20  # edge 2 carried 20; edge 0 carried 15
        assert m.max_edge_messages == 2
        assert m.mean_message_bits == 35 / 3

    def test_termination_snapshot(self):
        c = MetricsCollector(num_edges=1)
        c.record_delivery(0, 4)
        c.record_termination(step=1)
        c.record_delivery(0, 4)
        m = c.freeze(steps=2)
        assert m.termination_step == 1
        assert m.messages_at_termination == 1
        assert m.bits_at_termination == 4
        assert m.total_messages == 2

    def test_first_termination_wins(self):
        c = MetricsCollector(num_edges=1)
        c.record_delivery(0, 1)
        c.record_termination(step=1)
        c.record_delivery(0, 1)
        c.record_termination(step=2)
        assert c.freeze(steps=2).termination_step == 1

    def test_no_termination(self):
        c = MetricsCollector(num_edges=1)
        c.record_delivery(0, 7)
        m = c.freeze(steps=1)
        assert m.termination_step is None
        assert m.messages_at_termination == 1  # falls back to totals

    def test_empty_run(self):
        m = MetricsCollector(num_edges=0).freeze(steps=0)
        assert m.total_messages == 0
        assert m.mean_message_bits == 0.0
        assert m.max_edge_bits == 0

    def test_edge_vectors(self):
        c = MetricsCollector(num_edges=2)
        c.record_delivery(1, 3)
        assert c.edge_bits() == [0, 3]
        assert c.edge_messages() == [0, 1]

    def test_state_bits_high_water(self):
        c = MetricsCollector(num_edges=1)
        c.record_state_bits(5)
        c.record_state_bits(3)
        assert c.freeze(steps=0).max_state_bits == 5


class TestTrace:
    def test_records_everything(self):
        net = path_network(4)
        result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
        trace = result.trace
        assert len(trace) == result.metrics.total_messages
        assert trace.messages_per_edge() == {e: 1 for e in range(net.num_edges)}

    def test_distinct_symbols(self):
        net = caterpillar_gn(6)
        result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
        assert result.trace.distinct_symbol_count() == 6

    def test_symbols_on_edge(self):
        net = path_network(3)
        result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
        for eid in range(net.num_edges):
            assert len(result.trace.symbols_on_edge(eid)) == 1

    def test_edge_symbol_multiset_canonical(self):
        trace = Trace()
        trace.record(1, 0, "b", 1)
        trace.record(2, 1, "a", 1)
        ms1 = trace.edge_symbol_multiset([0, 1])
        ms2 = trace.edge_symbol_multiset([1, 0])
        assert ms1 == ms2 == ("a", "b")

    def test_edge_symbol_multiset_matches_per_edge_reference(self):
        """Single-pass implementation agrees with the naive per-edge scan,
        including repeated edge ids (which contribute once per occurrence)."""
        net = caterpillar_gn(6)
        result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
        trace = result.trace
        cuts = [
            [0],
            [1, 3],
            list(range(net.num_edges)),
            [2, 2, 5],  # repeated edge id
            [net.num_edges - 1, 0, 0],
            [],
            [999],  # edge with no deliveries
        ]
        for cut in cuts:
            reference = []
            for eid in cut:
                reference.extend(trace.symbols_on_edge(eid))
            expected = tuple(sorted(reference, key=repr))
            assert trace.edge_symbol_multiset(cut) == expected

    def test_no_trace_by_default(self):
        result = run_protocol(path_network(3), TreeBroadcastProtocol())
        assert result.trace is None
