"""Failure injection: what the protocols do when the model's reliable-
delivery assumption is violated.

The paper's protocols are not loss-tolerant — they cannot be, without
feedback — but they must *fail safe*: lost commodity can only delay the
terminal's accounting forever, never complete it spuriously.  These tests
pin that down.
"""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.invariants import coverage_within_unit, labels_disjoint_globally
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import random_digraph, random_grounded_tree
from repro.network.scheduler import DroppingScheduler
from repro.network.simulator import Outcome, run_protocol


class TestDroppingScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            DroppingScheduler(drop_probability=1.5)

    def test_zero_probability_is_lossless(self):
        net = random_grounded_tree(20, seed=0)
        scheduler = DroppingScheduler(seed=1, drop_probability=0.0)
        result = run_protocol(net, TreeBroadcastProtocol(), scheduler)
        assert result.terminated
        assert scheduler.dropped == 0

    def test_total_loss_goes_nowhere(self):
        net = random_grounded_tree(10, seed=0)
        scheduler = DroppingScheduler(seed=1, drop_probability=1.0)
        result = run_protocol(net, TreeBroadcastProtocol(), scheduler)
        assert result.outcome is Outcome.QUIESCENT
        assert result.metrics.total_messages == 0
        assert scheduler.dropped >= 1

    def test_deterministic_per_seed(self):
        net = random_grounded_tree(25, seed=2)

        def run(seed):
            scheduler = DroppingScheduler(seed=seed, drop_probability=0.3)
            result = run_protocol(net, TreeBroadcastProtocol(), scheduler)
            return scheduler.dropped, result.metrics.total_messages

        assert run(5) == run(5)


class TestFailSafe:
    @pytest.mark.parametrize("factory", [GeneralBroadcastProtocol, LabelAssignmentProtocol])
    @pytest.mark.parametrize("seed", range(5))
    def test_losses_never_cause_false_termination(self, factory, seed):
        """With commodity lost, the unit interval cannot be covered at t —
        the run must end quiescent, not terminated."""
        net = random_digraph(15, seed=seed)
        scheduler = DroppingScheduler(seed=seed, drop_probability=0.25)
        result = run_protocol(net, factory(), scheduler)
        if scheduler.dropped and result.terminated:
            # Termination despite drops is only legitimate when every
            # dropped message was redundant (pure β re-flood); the terminal
            # must still have covered the whole interval honestly.
            assert result.states[net.terminal].covered().is_unit()
        if not result.terminated:
            assert result.outcome is Outcome.QUIESCENT

    @pytest.mark.parametrize("seed", range(3))
    def test_safety_invariants_survive_losses(self, seed):
        """Loss breaks liveness, never safety: coverage stays within the
        unit interval and labels stay disjoint."""
        net = random_digraph(12, seed=seed)
        scheduler = DroppingScheduler(seed=seed + 10, drop_probability=0.3)
        result = run_protocol(net, LabelAssignmentProtocol(), scheduler)
        assert coverage_within_unit(result.states)
        assert labels_disjoint_globally(result.states)

    def test_tree_protocol_shortfall_is_exactly_the_loss(self):
        net = random_grounded_tree(30, seed=4)
        scheduler = DroppingScheduler(seed=2, drop_probability=0.2)
        result = run_protocol(net, TreeBroadcastProtocol(), scheduler)
        if scheduler.dropped:
            assert not result.terminated
            assert result.states[net.terminal].received_sum < 1
