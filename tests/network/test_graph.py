"""Tests for the DirectedNetwork substrate."""

import pytest

from repro.network.graph import DirectedNetwork, NetworkValidationError


def diamond():
    # s=0, t=1, a=2, b=3, c=4 : s→a, a→b, a→c, b→t, c→t
    return DirectedNetwork(5, [(0, 2), (2, 3), (2, 4), (3, 1), (4, 1)], root=0, terminal=1)


class TestValidation:
    def test_root_with_in_edge_rejected(self):
        with pytest.raises(NetworkValidationError):
            DirectedNetwork(3, [(0, 2), (2, 0), (2, 1)], root=0, terminal=1)

    def test_terminal_with_out_edge_rejected(self):
        with pytest.raises(NetworkValidationError):
            DirectedNetwork(3, [(0, 2), (2, 1), (1, 2)], root=0, terminal=1)

    def test_root_needs_out_edge(self):
        with pytest.raises(NetworkValidationError):
            DirectedNetwork(3, [(2, 1)], root=0, terminal=1)

    def test_strict_root_single_out_edge(self):
        with pytest.raises(NetworkValidationError):
            DirectedNetwork(
                4, [(0, 2), (0, 3), (2, 1), (3, 1)], root=0, terminal=1, strict_root=True
            )

    def test_root_equals_terminal_rejected(self):
        with pytest.raises(NetworkValidationError):
            DirectedNetwork(2, [(0, 1)], root=0, terminal=0)

    def test_validation_can_be_disabled(self):
        net = DirectedNetwork(3, [(2, 1)], root=0, terminal=1, validate=False)
        assert net.num_edges == 1

    def test_edge_out_of_range(self):
        with pytest.raises(NetworkValidationError):
            DirectedNetwork(3, [(0, 5)], root=0, terminal=1)


class TestPorts:
    def test_port_order_follows_edge_list(self):
        net = diamond()
        assert net.out_edge_ids(2) == (1, 2)
        assert net.out_port_of_edge(1) == 0
        assert net.out_port_of_edge(2) == 1
        assert net.in_port_of_edge(3) == 0  # b→t is t's first in-edge

    def test_degrees(self):
        net = diamond()
        assert net.out_degree(2) == 2
        assert net.in_degree(1) == 2
        assert net.max_out_degree() == 2

    def test_neighbors(self):
        net = diamond()
        assert net.out_neighbors(2) == [3, 4]
        assert net.in_neighbors(1) == [3, 4]

    def test_multi_edges_distinct_ports(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (2, 3), (3, 1)], root=0, terminal=1)
        assert net.out_degree(2) == 2
        assert net.in_degree(3) == 2


class TestReachability:
    def test_reachable_from_root(self):
        net = diamond()
        assert net.all_reachable_from_root()
        assert net.reachable_from(3) == {3, 1}

    def test_connected_to_terminal(self):
        net = diamond()
        assert net.all_connected_to_terminal()
        assert net.vertices_not_connected_to_terminal() == set()

    def test_dead_end_detected(self):
        net = DirectedNetwork(
            4, [(0, 2), (2, 3), (2, 1)], root=0, terminal=1, validate=False
        )
        assert net.vertices_not_connected_to_terminal() == {3}
        assert not net.all_connected_to_terminal()


class TestStructure:
    def test_topological_order(self):
        net = diamond()
        order = net.topological_order()
        assert order is not None
        pos = {v: i for i, v in enumerate(order)}
        for tail, head in net.edges:
            assert pos[tail] < pos[head]

    def test_cyclic_has_no_topological_order(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        assert net.topological_order() is None
        assert not net.is_acyclic()

    def test_internal_vertices(self):
        assert set(diamond().internal_vertices()) == {2, 3, 4}

    def test_edge_multiset(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (2, 3), (3, 1)], root=0, terminal=1)
        assert net.edge_set_multiset()[(2, 3)] == 2

    def test_same_topology_under(self):
        a = diamond()
        b = DirectedNetwork(5, [(0, 3), (3, 2), (3, 4), (2, 1), (4, 1)], root=0, terminal=1)
        assert a.same_topology_under(b, {0: 0, 1: 1, 2: 3, 3: 2, 4: 4})
        assert not a.same_topology_under(b, {0: 0, 1: 1, 2: 2, 3: 3, 4: 4})

    def test_to_dot(self):
        dot = diamond().to_dot()
        assert "digraph" in dot
        assert '"s"' in dot and '"t"' in dot

    def test_repr(self):
        assert "|V|=5" in repr(diamond())
