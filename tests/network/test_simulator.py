"""Tests for the asynchronous execution engine."""

import pytest

from repro.core.model import FunctionalProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import path_network, random_grounded_tree
from repro.network.graph import DirectedNetwork
from repro.network.simulator import Outcome, SimulationError, run_protocol


def forwarding_protocol(stop_value=1, emit_on=None):
    """Forward the message unchanged; stop when the terminal sees it."""
    return FunctionalProtocol(
        initial_state=0,
        initial_message=stop_value,
        state_fn=lambda state, msg, i: msg,
        message_fn=lambda state, msg, i, j: msg if emit_on is None or j in emit_on else None,
        stopping_predicate=lambda state: state == stop_value,
        message_bits_fn=lambda msg: 8,
    )


class TestOutcomes:
    def test_terminated(self):
        result = run_protocol(path_network(3), forwarding_protocol())
        assert result.outcome is Outcome.TERMINATED
        assert result.terminated
        assert result.output == 1

    def test_quiescent(self):
        # Terminal never satisfied: stopping predicate wants value 2.
        protocol = FunctionalProtocol(
            initial_state=0,
            initial_message=1,
            state_fn=lambda state, msg, i: msg,
            message_fn=lambda state, msg, i, j: msg,
            stopping_predicate=lambda state: state == 2,
            message_bits_fn=lambda msg: 8,
        )
        result = run_protocol(path_network(3), protocol)
        assert result.outcome is Outcome.QUIESCENT
        assert result.output is None

    def test_budget_exhausted(self):
        # A two-cycle bouncing a message forever.
        protocol = FunctionalProtocol(
            initial_state=0,
            initial_message=1,
            state_fn=lambda state, msg, i: msg,
            message_fn=lambda state, msg, i, j: msg,
            stopping_predicate=lambda state: False,
            message_bits_fn=lambda msg: 1,
        )
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = run_protocol(net, protocol, max_steps=50)
        assert result.outcome is Outcome.BUDGET_EXHAUSTED

    def test_stop_at_termination_skips_drain(self):
        net = random_grounded_tree(30, seed=1)
        full = run_protocol(net, TreeBroadcastProtocol())
        early = run_protocol(net, TreeBroadcastProtocol(), stop_at_termination=True)
        assert early.terminated and full.terminated
        assert early.metrics.steps <= full.metrics.steps


class TestAccounting:
    def test_termination_step_recorded(self):
        net = path_network(4)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.metrics.termination_step is not None
        assert result.metrics.termination_step <= result.metrics.steps

    def test_bits_at_termination_monotone(self):
        net = random_grounded_tree(25, seed=2)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.metrics.bits_at_termination <= result.metrics.total_bits
        assert result.metrics.messages_at_termination <= result.metrics.total_messages

    def test_state_bits_tracked_on_request(self):
        net = path_network(5)
        result = run_protocol(net, TreeBroadcastProtocol(), track_state_bits=True)
        assert result.metrics.max_state_bits > 0

    def test_state_bits_not_tracked_by_default(self):
        net = path_network(5)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.metrics.max_state_bits == 0


class TestErrors:
    def test_bad_emission_port_raises(self):
        protocol = FunctionalProtocol(
            initial_state=0,
            initial_message=1,
            state_fn=lambda state, msg, i: msg,
            message_fn=lambda state, msg, i, j: msg,
            stopping_predicate=lambda state: False,
            message_bits_fn=lambda msg: 1,
        )

        class Broken(type(protocol)):
            pass

        broken = protocol
        original = broken.on_receive

        def bad(state, view, in_port, message):
            return state, [(99, message)]

        broken.on_receive = bad  # type: ignore[method-assign]
        with pytest.raises(SimulationError):
            run_protocol(path_network(3), broken)


class TestDeterminism:
    def test_same_inputs_same_run(self):
        net = random_grounded_tree(40, seed=3)

        def run_once():
            result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
            return [(r.step, r.edge_id, repr(r.payload)) for r in result.trace.deliveries]

        assert run_once() == run_once()
