"""Tests for the delivery schedulers (the asynchronous adversary)."""

import pytest

from repro.network.events import MessageEvent
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import (
    FifoScheduler,
    LifoScheduler,
    PortBiasedScheduler,
    RandomScheduler,
    TerminalFirstScheduler,
    TerminalLastScheduler,
    make_standard_schedulers,
)


def event(edge_id: int, seq: int) -> MessageEvent:
    return MessageEvent(edge_id=edge_id, payload=f"m{seq}", seq=seq, sent_step=0, bits=1)


def net_with_terminal_edges():
    # s=0 -> a=2 -> t=1 and a -> b=3 -> t ; edges into t: ids 2 and 3
    return DirectedNetwork(
        4, [(0, 2), (2, 3), (2, 1), (3, 1)], root=0, terminal=1
    )


class TestFifoLifo:
    def test_fifo_order(self):
        s = FifoScheduler()
        for i in range(3):
            s.push(event(0, i))
        assert [s.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_lifo_order(self):
        s = LifoScheduler()
        for i in range(3):
            s.push(event(0, i))
        assert [s.pop().seq for _ in range(3)] == [2, 1, 0]

    def test_len(self):
        s = FifoScheduler()
        assert len(s) == 0
        s.push(event(0, 0))
        assert len(s) == 1


class TestRandom:
    def test_deterministic_given_seed(self):
        def drain(seed):
            s = RandomScheduler(seed=seed)
            for i in range(10):
                s.push(event(0, i))
            return [s.pop().seq for _ in range(10)]

        assert drain(5) == drain(5)

    def test_different_seeds_differ(self):
        def drain(seed):
            s = RandomScheduler(seed=seed)
            for i in range(20):
                s.push(event(0, i))
            return [s.pop().seq for _ in range(20)]

        assert drain(1) != drain(2)

    def test_all_delivered(self):
        s = RandomScheduler(seed=0)
        for i in range(50):
            s.push(event(0, i))
        seen = {s.pop().seq for _ in range(50)}
        assert seen == set(range(50))


class TestTerminalAware:
    def test_terminal_last_starves_terminal(self):
        net = net_with_terminal_edges()
        s = TerminalLastScheduler()
        s.bind(net)
        s.push(event(2, 0))  # into t
        s.push(event(1, 1))  # internal
        s.push(event(3, 2))  # into t
        order = [s.pop().edge_id for _ in range(3)]
        assert order == [1, 2, 3]

    def test_terminal_first_rushes_terminal(self):
        net = net_with_terminal_edges()
        s = TerminalFirstScheduler()
        s.bind(net)
        s.push(event(1, 0))  # internal
        s.push(event(2, 1))  # into t
        order = [s.pop().edge_id for _ in range(2)]
        assert order == [2, 1]


class TestPortBiased:
    def test_prefers_high_ports(self):
        net = net_with_terminal_edges()
        s = PortBiasedScheduler()
        s.bind(net)
        s.push(event(1, 0))  # a's out-port 0
        s.push(event(2, 1))  # a's out-port 1
        assert s.pop().edge_id == 2


def test_standard_batch_is_fresh_and_complete():
    batch = make_standard_schedulers(random_seeds=2)
    names = [s.name for s in batch]
    assert len(batch) == 8
    assert "fifo" in names and "lifo" in names and "latency" in names
    assert any("random" in n for n in names)
    # Fresh instances each call.
    assert make_standard_schedulers()[0] is not batch[0]


class TestLatency:
    def test_virtual_time_advances(self):
        from repro.network.scheduler import LatencyScheduler

        s = LatencyScheduler(seed=1)
        s.push(event(0, 0))
        s.push(event(1, 1))
        t0 = s.virtual_time
        s.pop()
        assert s.virtual_time > t0

    def test_deterministic_per_seed(self):
        from repro.network.scheduler import LatencyScheduler

        def drain(seed):
            s = LatencyScheduler(seed=seed)
            for i in range(6):
                s.push(event(i % 3, i))
            return [s.pop().seq for _ in range(6)], s.virtual_time

        assert drain(4) == drain(4)

    def test_fast_edge_wins(self):
        from repro.network.scheduler import LatencyScheduler

        s = LatencyScheduler(seed=0, min_latency=1.0, max_latency=100.0)
        s.push(event(0, 0))
        s.push(event(1, 1))
        lat0 = s._latency(0)
        lat1 = s._latency(1)
        first = s.pop()
        assert first.edge_id == (0 if lat0 < lat1 else 1)

    def test_validation(self):
        from repro.network.scheduler import LatencyScheduler
        import pytest

        with pytest.raises(ValueError):
            LatencyScheduler(min_latency=0)
        with pytest.raises(ValueError):
            LatencyScheduler(min_latency=5, max_latency=2)
