"""Unit tests for the fast-path engine machinery itself.

The equivalence contract is covered exhaustively by
``tests/api/test_engine_differential.py``; this module tests the engine's
own moving parts: the compiled topology pass, the flat queue/stack/
scheduler drivers, deferred trace materialisation, error propagation and
kernel engagement rules.
"""

from __future__ import annotations

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.interval_kernel import (
    IntervalKernel,
    _cost,
    _difference,
    _intersection,
    _split,
    _union,
)
from repro.core.intervals import (
    EMPTY_UNION,
    UNIT_INTERVAL,
    UNIT_UNION,
    Interval,
    IntervalUnion,
    split_interval,
    union_cost,
)
from repro.core.dyadic import Dyadic
from repro.core.model import AnonymousProtocol, VertexView
from repro.network.fastpath import (
    CompiledNetwork,
    FastEvent,
    run_protocol_fastpath,
)
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import FifoScheduler, LifoScheduler, RandomScheduler
from repro.network.simulator import Outcome, SimulationError, run_protocol


def diamond():
    """s -> a, s -> b, a -> t, b -> t (root 0, terminal 3)."""
    return DirectedNetwork(4, [(0, 1), (0, 2), (1, 3), (2, 3)], root=0, terminal=3)


class TestCompiledNetwork:
    def test_flat_arrays_match_network_queries(self):
        net = DirectedNetwork(
            5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)], root=0, terminal=4
        )
        compiled = CompiledNetwork(net)
        assert compiled.num_vertices == net.num_vertices
        assert compiled.num_edges == net.num_edges
        assert compiled.root == net.root
        assert compiled.terminal == net.terminal
        for eid in range(net.num_edges):
            assert compiled.edge_head[eid] == net.edge_head(eid)
            assert compiled.edge_tail[eid] == net.edge_tail(eid)
            assert compiled.in_port[eid] == net.in_port_of_edge(eid)
        for v in range(net.num_vertices):
            assert compiled.out_edge_ids[v] == net.out_edge_ids(v)
            assert compiled.views[v] == VertexView(
                in_degree=net.in_degree(v), out_degree=net.out_degree(v)
            )

    def test_multi_edges_get_distinct_in_ports(self):
        net = DirectedNetwork(3, [(0, 1), (1, 2), (1, 2)], root=0, terminal=2)
        compiled = CompiledNetwork(net)
        assert compiled.in_port[1] == 0
        assert compiled.in_port[2] == 1


class TestFastEvent:
    def test_duck_types_message_event_attributes(self):
        event = FastEvent(3, "payload", 7, 2, 11)
        assert (event.edge_id, event.payload, event.seq, event.sent_step, event.bits) == (
            3,
            "payload",
            7,
            2,
            11,
        )


class _BadPortProtocol(AnonymousProtocol):
    """Emits on a non-existent out-port on the first delivery."""

    name = "bad-port"

    def create_state(self, view):
        return 0

    def initial_emissions(self, view):
        return [(0, "go")]

    def on_receive(self, state, view, in_port, message):
        return state + 1, [(view.out_degree + 3, "boom")]

    def is_terminated(self, state):
        return False

    def message_bits(self, message):
        return 8


class TestEngineBehaviour:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [FifoScheduler, LifoScheduler, lambda: RandomScheduler(seed=1)],
        ids=["fifo", "lifo", "random"],
    )
    def test_bad_out_port_raises_like_reference(self, scheduler_factory):
        protocol = _BadPortProtocol()
        with pytest.raises(SimulationError, match="out-port"):
            run_protocol(diamond(), protocol, scheduler_factory())
        with pytest.raises(SimulationError, match="out-port"):
            run_protocol_fastpath(diamond(), protocol, scheduler_factory())

    def test_default_budget_matches_reference(self):
        net = diamond()
        protocol = GeneralBroadcastProtocol()
        fast = run_protocol_fastpath(net, protocol)
        reference = run_protocol(net, protocol)
        assert fast.metrics == reference.metrics
        assert fast.outcome is reference.outcome

    def test_trace_materialised_identically(self):
        net = diamond()
        protocol = GeneralBroadcastProtocol()
        fast = run_protocol_fastpath(net, protocol, record_trace=True)
        reference = run_protocol(net, protocol, record_trace=True)
        assert fast.trace is not None
        assert fast.trace.deliveries == reference.trace.deliveries
        assert fast.trace.distinct_symbols() == reference.trace.distinct_symbols()

    def test_no_trace_by_default(self):
        result = run_protocol_fastpath(diamond(), GeneralBroadcastProtocol())
        assert result.trace is None

    def test_budget_exhaustion_outcome(self):
        result = run_protocol_fastpath(
            diamond(), GeneralBroadcastProtocol(), max_steps=1
        )
        assert result.outcome is Outcome.BUDGET_EXHAUSTED
        assert result.metrics.steps == 1
        assert result.output is None

    def test_states_are_real_general_states(self):
        net = diamond()
        fast = run_protocol_fastpath(net, GeneralBroadcastProtocol("m"))
        reference = run_protocol(net, GeneralBroadcastProtocol("m"))
        assert set(fast.states) == set(reference.states)
        for v in fast.states:
            assert repr(fast.states[v]) == repr(reference.states[v])
        assert fast.output == reference.output == "m"


class TestKernelEngagement:
    def test_plain_protocol_offers_kernel(self):
        compiled = CompiledNetwork(diamond())
        kernel = GeneralBroadcastProtocol().compile_fastpath(compiled)
        assert isinstance(kernel, IntervalKernel)

    def test_unknown_subclass_falls_back_to_generic(self):
        class Tweaked(GeneralBroadcastProtocol):
            name = "tweaked-general-broadcast"

        compiled = CompiledNetwork(diamond())
        assert Tweaked().compile_fastpath(compiled) is None

    def test_base_protocol_hook_defaults_to_none(self):
        compiled = CompiledNetwork(diamond())
        assert _BadPortProtocol().compile_fastpath(compiled) is None


def _flat(union: IntervalUnion):
    return [
        (iv.lo.num, iv.lo.exp, iv.hi.num, iv.hi.exp) for iv in union.intervals
    ]


class TestFlatAlgebra:
    """The kernel's int-pair algebra agrees with the object implementation."""

    CASES = [
        (EMPTY_UNION, EMPTY_UNION),
        (UNIT_UNION, EMPTY_UNION),
        (
            IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 2))),
            IntervalUnion.of(Interval(Dyadic(1, 2), Dyadic(1, 1))),
        ),
        (
            IntervalUnion.of(
                Interval(Dyadic(1, 3), Dyadic(3, 3)),
                Interval(Dyadic(5, 3), Dyadic(7, 3)),
            ),
            IntervalUnion.of(Interval(Dyadic(1, 2), Dyadic(3, 2))),
        ),
        (
            IntervalUnion.of(Interval(Dyadic(1, 4), Dyadic(13, 4))),
            IntervalUnion.of(
                Interval(Dyadic(1, 3), Dyadic(3, 3)),
                Interval(Dyadic(11, 4), Dyadic(15, 4)),
            ),
        ),
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_union_difference_intersection_match(self, a, b):
        assert _union(_flat(a), _flat(b)) == _flat(a.union(b))
        assert _difference(_flat(a), _flat(b)) == _flat(a.difference(b))
        assert _intersection(_flat(a), _flat(b)) == _flat(a.intersection(b))

    @pytest.mark.parametrize("a,b", CASES)
    def test_cost_matches_union_cost(self, a, b):
        assert _cost(_flat(a)) == union_cost(a)
        assert _cost(_flat(b)) == union_cost(b)

    @pytest.mark.parametrize("parts", [2, 3, 4, 5, 8])
    def test_split_matches_split_interval(self, parts):
        interval = Interval(Dyadic(1, 3), Dyadic(7, 3))
        flat = (1, 3, 7, 3)
        expected = [
            (iv.lo.num, iv.lo.exp, iv.hi.num, iv.hi.exp)
            for iv in split_interval(interval, parts)
        ]
        assert _split(flat, parts) == expected

    def test_split_unit_interval(self):
        flat = (0, 0, 1, 0)
        expected = [
            (iv.lo.num, iv.lo.exp, iv.hi.num, iv.hi.exp)
            for iv in split_interval(UNIT_INTERVAL, 3)
        ]
        assert _split(flat, 3) == expected
