"""Round-trip tests for the serialization helpers."""

import json

import pytest

from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import random_digraph, random_grounded_tree, with_dead_end_vertex
from repro.network.serialization import (
    metrics_to_dict,
    network_from_json,
    network_to_json,
    trace_to_jsonl,
)
from repro.network.simulator import run_protocol


class TestNetworkRoundTrip:
    @pytest.mark.parametrize("seed", range(3))
    def test_identity(self, seed):
        net = random_digraph(15, seed=seed)
        clone = network_from_json(network_to_json(net))
        assert clone.num_vertices == net.num_vertices
        assert clone.edges == net.edges  # port order preserved exactly
        assert clone.root == net.root and clone.terminal == net.terminal

    def test_relaxed_graphs_load(self):
        bad = with_dead_end_vertex(random_digraph(8, seed=0))
        clone = network_from_json(network_to_json(bad))
        assert clone.edges == bad.edges

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            network_from_json(json.dumps({"format": "something-else"}))

    def test_indent_option(self):
        net = random_grounded_tree(5, seed=0)
        assert "\n" in network_to_json(net, indent=2)


class TestMetricsAndTrace:
    def test_metrics_dict_json_safe(self):
        net = random_grounded_tree(10, seed=1)
        result = run_protocol(net, TreeBroadcastProtocol())
        payload = metrics_to_dict(result.metrics)
        text = json.dumps(payload)
        assert json.loads(text)["total_messages"] == result.metrics.total_messages

    def test_trace_jsonl(self):
        net = random_grounded_tree(8, seed=2)
        result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
        lines = trace_to_jsonl(result.trace).splitlines()
        assert len(lines) == result.metrics.total_messages
        first = json.loads(lines[0])
        assert set(first) == {"step", "edge", "bits", "payload"}

    def test_trace_deterministic(self):
        net = random_grounded_tree(8, seed=3)
        a = trace_to_jsonl(run_protocol(net, TreeBroadcastProtocol(), record_trace=True).trace)
        b = trace_to_jsonl(run_protocol(net, TreeBroadcastProtocol(), record_trace=True).trace)
        assert a == b
