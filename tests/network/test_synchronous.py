"""Tests for the synchronous-rounds execution mode (§2 extension)."""

import pytest

from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol, extract_labels, labels_pairwise_disjoint
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import (
    path_network,
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
)
from repro.graphs.properties import longest_path_length
from repro.network.simulator import Outcome, run_protocol
from repro.network.synchronous import run_protocol_synchronous


class TestRoundSemantics:
    def test_path_rounds_equal_length(self):
        net = path_network(6)  # s → 6 vertices → t : longest path 7
        result = run_protocol_synchronous(net, TreeBroadcastProtocol())
        assert result.terminated
        assert result.termination_round == 7 == longest_path_length(net)

    @pytest.mark.parametrize("seed", range(3))
    def test_tree_rounds_equal_longest_path(self, seed):
        net = random_grounded_tree(40, seed=seed)
        result = run_protocol_synchronous(net, TreeBroadcastProtocol())
        assert result.termination_round == longest_path_length(net)

    @pytest.mark.parametrize("seed", range(3))
    def test_dag_rounds_equal_longest_path(self, seed):
        net = random_dag(40, seed=seed)
        result = run_protocol_synchronous(net, DagBroadcastProtocol())
        assert result.termination_round == longest_path_length(net)

    def test_general_protocol_terminates_synchronously(self):
        net = random_digraph(25, seed=5)
        result = run_protocol_synchronous(net, GeneralBroadcastProtocol())
        assert result.terminated
        assert result.termination_round <= net.num_vertices

    def test_rounds_counted_to_quiescence(self):
        net = random_digraph(15, seed=1)
        result = run_protocol_synchronous(net, GeneralBroadcastProtocol())
        assert result.rounds >= result.termination_round


class TestConsistencyWithAsync:
    """The synchronous schedule is one admissible asynchronous schedule, so
    outcomes and invariants must agree with the event-driven simulator."""

    def test_same_outcome_good_graph(self):
        net = random_digraph(20, seed=2)
        sync = run_protocol_synchronous(net, GeneralBroadcastProtocol())
        async_ = run_protocol(net, GeneralBroadcastProtocol())
        assert sync.terminated and async_.terminated

    def test_same_outcome_bad_graph(self):
        net = with_dead_end_vertex(random_digraph(15, seed=3))
        sync = run_protocol_synchronous(net, GeneralBroadcastProtocol())
        assert sync.outcome is Outcome.QUIESCENT

    def test_tree_message_totals_identical(self):
        # One message per edge either way: identical totals and bits.
        net = random_grounded_tree(30, seed=4)
        sync = run_protocol_synchronous(net, TreeBroadcastProtocol())
        async_ = run_protocol(net, TreeBroadcastProtocol())
        assert sync.metrics.total_messages == async_.metrics.total_messages
        assert sync.metrics.total_bits == async_.metrics.total_bits

    def test_labeling_invariants_hold(self):
        net = random_digraph(18, seed=6)
        result = run_protocol_synchronous(net, LabelAssignmentProtocol())
        assert result.terminated
        labels = extract_labels(result.states)
        assert set(labels) == set(net.internal_vertices())
        assert labels_pairwise_disjoint(list(labels.values()))


class TestBudget:
    def test_budget_exhaustion(self):
        from repro.core.model import FunctionalProtocol
        from repro.network.graph import DirectedNetwork

        bouncer = FunctionalProtocol(
            initial_state=0,
            initial_message=1,
            state_fn=lambda state, msg, i: msg,
            message_fn=lambda state, msg, i, j: msg,
            stopping_predicate=lambda state: False,
            message_bits_fn=lambda msg: 1,
        )
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = run_protocol_synchronous(net, bouncer, max_rounds=10)
        assert result.outcome is Outcome.BUDGET_EXHAUSTED
        assert result.rounds == 10

    def test_stop_at_termination(self):
        net = random_digraph(15, seed=7)
        early = run_protocol_synchronous(
            net, GeneralBroadcastProtocol(), stop_at_termination=True
        )
        full = run_protocol_synchronous(net, GeneralBroadcastProtocol())
        assert early.terminated and full.terminated
        assert early.rounds <= full.rounds


class TestOutput:
    def test_output_exposed_on_termination(self):
        net = path_network(3)
        result = run_protocol_synchronous(net, TreeBroadcastProtocol("m"))
        assert result.output == "m"

    def test_no_output_without_termination(self):
        net = with_dead_end_vertex(random_digraph(10, seed=0))
        result = run_protocol_synchronous(net, GeneralBroadcastProtocol("m"))
        assert result.output is None
