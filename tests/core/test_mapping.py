"""Tests for the topology-mapping protocol (Section 6 extension)."""

import pytest

from repro.core.mapping import (
    ROOT_MARKER,
    TERMINAL_MARKER,
    EdgeFact,
    MappingProtocol,
    NetworkMap,
    VertexFact,
    _closure,
)
from repro.graphs.generators import (
    path_network,
    random_dag,
    random_digraph,
    with_dead_end_vertex,
    with_stranded_cycle,
)
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import Outcome, run_protocol


def identity_map(net, result):
    ident = {net.root: ROOT_MARKER, net.terminal: TERMINAL_MARKER}
    for v in net.internal_vertices():
        ident[v] = result.states[v].base.label
    return ident


class TestReconstruction:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_on_random_digraphs(self, seed):
        net = random_digraph(15, seed=seed)
        result = run_protocol(net, MappingProtocol())
        assert result.terminated
        assert result.output is not None
        assert result.output.matches_network(net, identity_map(net, result))

    def test_exact_on_dags_and_paths(self):
        for net in (random_dag(20, seed=1), path_network(6)):
            result = run_protocol(net, MappingProtocol())
            assert result.terminated
            assert result.output.matches_network(net, identity_map(net, result))

    def test_under_all_schedulers(self):
        net = random_digraph(12, seed=5)
        for scheduler in make_standard_schedulers(random_seeds=2):
            result = run_protocol(net, MappingProtocol(), scheduler)
            assert result.terminated, scheduler.name
            assert result.output.matches_network(net, identity_map(net, result)), scheduler.name

    def test_multi_edges_mapped(self):
        # Two parallel edges a → b must appear twice in the map.
        net = DirectedNetwork(4, [(0, 2), (2, 3), (2, 3), (3, 1)], root=0, terminal=1)
        result = run_protocol(net, MappingProtocol())
        assert result.terminated
        netmap = result.output
        ident = identity_map(net, result)
        assert netmap.matches_network(net, ident)
        assert netmap.edge_multiset()[(ident[2], ident[3])] == 2

    def test_out_port_wiring_exact(self):
        net = random_digraph(10, seed=7)
        result = run_protocol(net, MappingProtocol())
        netmap = result.output
        ident = identity_map(net, result)
        reverse = {label: v for v, label in ident.items()}
        for fact in netmap.edges:
            tail = reverse[fact.tail]
            eid = net.out_edge_ids(tail)[fact.tail_port]
            assert ident[net.edge_head(eid)] == fact.head


class TestTermination:
    def test_dead_end_blocks(self):
        net = with_dead_end_vertex(random_digraph(10, seed=2))
        result = run_protocol(net, MappingProtocol())
        assert result.outcome is Outcome.QUIESCENT

    def test_stranded_cycle_blocks(self):
        net = with_stranded_cycle(random_digraph(10, seed=2))
        result = run_protocol(net, MappingProtocol())
        assert result.outcome is Outcome.QUIESCENT


class TestClosure:
    def test_incomplete_facts_rejected(self):
        facts = {VertexFact(ROOT_MARKER, 1)}
        assert _closure(facts) is None  # missing the root's edge

    def test_missing_vertex_fact_rejected(self):
        facts = {
            VertexFact(ROOT_MARKER, 1),
            EdgeFact(ROOT_MARKER, 0, "L1", 0),  # L1 has no VertexFact
        }
        assert _closure(facts) is None

    def test_minimal_complete_map(self):
        facts = {
            VertexFact(ROOT_MARKER, 1),
            EdgeFact(ROOT_MARKER, 0, TERMINAL_MARKER, 0),
        }
        netmap = _closure(facts)
        assert netmap is not None
        assert netmap.vertices == {ROOT_MARKER: 1, TERMINAL_MARKER: 0}
        assert len(netmap.edges) == 1

    def test_no_root_fact_rejected(self):
        assert _closure({VertexFact(TERMINAL_MARKER, 0)}) is None

    def test_unsaturated_out_degree_rejected(self):
        facts = {
            VertexFact(ROOT_MARKER, 2),
            EdgeFact(ROOT_MARKER, 0, TERMINAL_MARKER, 0),
        }
        assert _closure(facts) is None


class TestFactAccounting:
    def test_fact_bits_positive(self):
        assert VertexFact(ROOT_MARKER, 3).bits() > 0
        assert EdgeFact(ROOT_MARKER, 0, TERMINAL_MARKER, 1).bits() > 0

    def test_message_bits_include_facts(self):
        net = path_network(4)
        result = run_protocol(net, MappingProtocol(), record_trace=True)
        assert result.terminated
        sizes = [r.bits for r in result.trace.deliveries]
        # Later messages carry more facts and cost more than the first.
        assert max(sizes) > min(sizes)
