"""Equivalence of the literal (f, g, S) forms with the class protocols."""

import pytest

from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.core.functional_forms import functional_dag_broadcast, functional_tree_broadcast
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.constructions import caterpillar_gn, skeleton_tree, skeleton_tree_hairs
from repro.graphs.generators import path_network, random_dag, random_grounded_tree
from repro.network.scheduler import FifoScheduler, RandomScheduler
from repro.network.simulator import run_protocol


def signatures(result):
    return (
        result.outcome,
        result.metrics.total_messages,
        result.metrics.termination_step,
    )


class TestTreeEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_run_shape(self, seed):
        net = random_grounded_tree(25, seed=seed)
        functional = run_protocol(net, functional_tree_broadcast(), FifoScheduler())
        classy = run_protocol(net, TreeBroadcastProtocol(), FifoScheduler())
        assert signatures(functional) == signatures(classy)

    def test_same_symbols_on_every_edge(self):
        net = caterpillar_gn(10)
        functional = run_protocol(net, functional_tree_broadcast(), record_trace=True)
        classy = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
        for eid in range(net.num_edges):
            f_sym = functional.trace.symbols_on_edge(eid)
            c_sym = classy.trace.symbols_on_edge(eid)
            # Functional messages are raw exponents; class messages wrap them.
            assert [s for s in f_sym] == [tok.exponent for tok in c_sym]

    def test_terminal_state_is_commodity_sum(self):
        net = path_network(4)
        result = run_protocol(net, functional_tree_broadcast())
        assert result.terminated
        assert result.states[net.terminal].received == 1

    def test_random_schedules_agree(self):
        net = random_grounded_tree(20, seed=7)
        for seed in range(3):
            functional = run_protocol(net, functional_tree_broadcast(), RandomScheduler(seed))
            classy = run_protocol(net, TreeBroadcastProtocol(), RandomScheduler(seed))
            assert functional.terminated and classy.terminated


class TestDagEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_run_shape(self, seed):
        net = random_dag(25, seed=seed)
        functional = run_protocol(net, functional_dag_broadcast(), FifoScheduler())
        classy = run_protocol(net, DagBroadcastProtocol(), FifoScheduler())
        assert signatures(functional) == signatures(classy)

    def test_same_values_on_skeleton_tree(self):
        net = skeleton_tree(4, subset=skeleton_tree_hairs(4))
        functional = run_protocol(net, functional_dag_broadcast(), record_trace=True)
        classy = run_protocol(net, DagBroadcastProtocol(), record_trace=True)
        for eid in range(net.num_edges):
            f_vals = functional.trace.symbols_on_edge(eid)
            c_vals = [tok.value for tok in classy.trace.symbols_on_edge(eid)]
            assert f_vals == c_vals

    def test_deadlocks_on_cycles_like_class_form(self):
        from repro.graphs.generators import random_digraph
        from repro.network.simulator import Outcome

        net = random_digraph(15, seed=3)
        result = run_protocol(net, functional_dag_broadcast())
        assert result.outcome is Outcome.QUIESCENT
