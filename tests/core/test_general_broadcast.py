"""Tests for the general-graph interval broadcast protocol (Section 4)."""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.intervals import EMPTY_UNION, UNIT_UNION
from repro.graphs.generators import (
    path_network,
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
    with_stranded_cycle,
)
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import Outcome, run_protocol


class TestTerminationOnGoodGraphs:
    @pytest.mark.parametrize("seed", range(5))
    def test_cyclic_digraphs(self, seed):
        net = random_digraph(25, seed=seed)
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert result.terminated

    def test_works_on_trees_and_dags_too(self):
        for net in (random_grounded_tree(30, seed=1), random_dag(30, seed=1), path_network(8)):
            result = run_protocol(net, GeneralBroadcastProtocol())
            assert result.terminated

    @pytest.mark.parametrize("scheduler_index", range(8))
    def test_all_schedulers(self, scheduler_index):
        net = random_digraph(20, seed=11)
        scheduler = make_standard_schedulers(random_seeds=3)[scheduler_index]
        result = run_protocol(net, GeneralBroadcastProtocol(), scheduler)
        assert result.terminated, scheduler.name

    def test_terminal_covers_unit(self):
        net = random_digraph(20, seed=3)
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert result.states[net.terminal].covered() == UNIT_UNION

    def test_two_cycle_through_terminal_path(self):
        # s → a ⇄ b, a → t: the cycle must be β-detected and t notified.
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert result.terminated
        # β actually fired: some commodity went around the cycle.
        assert not result.states[1].beta.is_empty()

    def test_self_loop(self):
        net = DirectedNetwork(3, [(0, 2), (2, 2), (2, 1)], root=0, terminal=1)
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert result.terminated


class TestTerminationIff:
    @pytest.mark.parametrize("seed", range(3))
    def test_dead_end_blocks(self, seed):
        net = with_dead_end_vertex(random_digraph(15, seed=seed))
        for scheduler in make_standard_schedulers(random_seeds=1):
            result = run_protocol(net, GeneralBroadcastProtocol(), scheduler)
            assert result.outcome is Outcome.QUIESCENT, scheduler.name

    @pytest.mark.parametrize("seed", range(3))
    def test_stranded_cycle_blocks(self, seed):
        net = with_stranded_cycle(random_digraph(15, seed=seed))
        for scheduler in make_standard_schedulers(random_seeds=1):
            result = run_protocol(net, GeneralBroadcastProtocol(), scheduler)
            assert result.outcome is Outcome.QUIESCENT, scheduler.name

    def test_unreachable_commodity_is_exactly_the_shortfall(self):
        base = random_digraph(10, seed=5)
        net = with_dead_end_vertex(base)
        dead = net.num_vertices - 1
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert not result.terminated
        # Everything the terminal is missing sits in the dead end (α side).
        terminal_cover = result.states[net.terminal].covered()
        missing = UNIT_UNION.difference(terminal_cover)
        dead_alpha = result.states[dead].alpha_acc
        assert not missing.is_empty()
        assert dead_alpha.contains_union(missing)


class TestDelivery:
    def test_everyone_receives_payload(self):
        net = random_digraph(25, seed=7)
        result = run_protocol(net, GeneralBroadcastProtocol("payload"))
        for v in range(net.num_vertices):
            if v != net.root:
                assert result.states[v].got_broadcast, v
                assert result.states[v].payload == "payload"


class TestStateInvariants:
    def test_alphas_pairwise_disjoint(self):
        net = random_digraph(20, seed=9)
        result = run_protocol(net, GeneralBroadcastProtocol())
        for v in net.internal_vertices():
            state = result.states[v]
            for i in range(len(state.alphas)):
                for j in range(i + 1, len(state.alphas)):
                    assert state.alphas[i].intersection(state.alphas[j]).is_empty()

    def test_partition_happens_once(self):
        # Only the last α may have multiple components; earlier ports hold
        # single intervals from the one-time Δ-split.
        net = random_digraph(20, seed=9)
        result = run_protocol(net, GeneralBroadcastProtocol())
        for v in net.internal_vertices():
            state = result.states[v]
            for alpha in state.alphas[:-1]:
                assert alpha.interval_count() <= 1

    def test_coverage_cache_consistent(self):
        net = random_digraph(15, seed=4)
        result = run_protocol(net, GeneralBroadcastProtocol())
        for v in net.internal_vertices():
            state = result.states[v]
            if state.virgin:
                continue
            merged = EMPTY_UNION
            if state.label is not None:
                merged = merged.union(state.label)
            for alpha in state.alphas:
                merged = merged.union(alpha)
            assert merged == state.coverage


class TestMonotonicity:
    def test_state_monotone_under_random_schedule(self):
        """The paper's state-monotonicity property, observed step by step."""
        from repro.core.model import VertexView

        net = random_digraph(12, seed=13)
        protocol = GeneralBroadcastProtocol()

        # Wrap on_receive to snapshot covered() growth per vertex.
        previous = {}
        original = protocol.on_receive

        def checked(state, view, in_port, message):
            key = id(state)
            before = state.covered()
            if key in previous:
                assert before.contains_union(previous[key])
            new_state, emissions = original(state, view, in_port, message)
            after = new_state.covered()
            assert after.contains_union(before)
            previous[id(new_state)] = after
            return new_state, emissions

        protocol.on_receive = checked  # type: ignore[method-assign]
        result = run_protocol(net, protocol)
        assert result.terminated


class TestMessageEconomy:
    def test_no_vacuous_messages(self):
        net = random_digraph(15, seed=6)
        result = run_protocol(net, GeneralBroadcastProtocol(), record_trace=True)
        for record in result.trace.deliveries:
            assert not record.payload.is_vacuous()
