"""Tests for the grounded-tree broadcast protocol (Section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DYADIC_ONE, Dyadic
from repro.core.tree_broadcast import TreeBroadcastProtocol, pow2_split_exponents
from repro.graphs.constructions import caterpillar_gn
from repro.graphs.generators import path_network, random_grounded_tree
from repro.graphs.properties import is_grounded_tree
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import Outcome, run_protocol


class TestSplitRule:
    @given(st.integers(min_value=1, max_value=200))
    def test_commodity_preserving(self, d):
        incs = pow2_split_exponents(d)
        assert len(incs) == d
        total = sum(Dyadic.pow2(-inc) for inc in incs)
        assert total == DYADIC_ONE

    @given(st.integers(min_value=1, max_value=200))
    def test_increments_are_ceil_log(self, d):
        incs = pow2_split_exponents(d)
        ceil_log = (d - 1).bit_length()
        assert set(incs) <= {ceil_log, ceil_log - 1}

    def test_degree_one_passthrough(self):
        assert pow2_split_exponents(1) == [0]

    def test_degree_three_matches_paper(self):
        # d = 3: α = 2·3 − 4 = 2 edges at 2^-2, one at 2^-1.
        assert pow2_split_exponents(3) == [2, 2, 1]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            pow2_split_exponents(0)


class TestTermination:
    def test_path(self):
        result = run_protocol(path_network(10), TreeBroadcastProtocol())
        assert result.outcome is Outcome.TERMINATED
        # One message per edge on a grounded tree.
        assert result.metrics.total_messages == path_network(10).num_edges

    def test_caterpillar(self):
        net = caterpillar_gn(20)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.terminated
        assert result.metrics.total_messages == net.num_edges

    @pytest.mark.parametrize("seed", range(5))
    def test_random_grounded_trees(self, seed):
        net = random_grounded_tree(60, seed=seed)
        assert is_grounded_tree(net)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.terminated
        assert result.metrics.total_messages == net.num_edges

    def test_all_schedulers(self):
        net = random_grounded_tree(40, seed=9)
        for scheduler in make_standard_schedulers():
            result = run_protocol(net, TreeBroadcastProtocol(), scheduler)
            assert result.terminated, scheduler.name

    def test_terminal_sum_exactly_one(self):
        net = random_grounded_tree(30, seed=3)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.states[net.terminal].received_sum == DYADIC_ONE

    def test_dead_end_blocks_termination(self):
        # s -> a; a -> b (dead end), a -> t: b's commodity never reaches t.
        net = DirectedNetwork(5, [(0, 2), (2, 3), (2, 1)], root=0, terminal=1, validate=False)
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.outcome is Outcome.QUIESCENT
        assert result.states[1].received_sum < DYADIC_ONE


class TestBroadcastDelivery:
    def test_everyone_receives_payload(self):
        net = random_grounded_tree(50, seed=2)
        result = run_protocol(net, TreeBroadcastProtocol("hello world"))
        for v in range(net.num_vertices):
            if v == net.root:
                continue
            assert result.states[v].got_broadcast
            assert result.states[v].payload == "hello world"
        assert result.output == "hello world"

    def test_payload_bits_charged(self):
        net = path_network(5)
        free = run_protocol(net, TreeBroadcastProtocol())
        paid = run_protocol(net, TreeBroadcastProtocol("mm"))  # 16 bits/message
        assert (
            paid.metrics.total_bits
            == free.metrics.total_bits + 16 * paid.metrics.total_messages
        )

    def test_explicit_payload_bits_override(self):
        protocol = TreeBroadcastProtocol(broadcast_payload=12345, payload_bits=20)
        assert protocol.payload_bits == 20

    def test_negative_payload_bits_rejected(self):
        with pytest.raises(ValueError):
            TreeBroadcastProtocol(payload_bits=-1)


class TestComplexityShape:
    def test_messages_are_powers_of_two(self):
        net = random_grounded_tree(40, seed=1)
        result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
        for record in result.trace.deliveries:
            assert record.payload.value.is_power_of_two()

    def test_max_message_bits_logarithmic(self):
        # Theorem 3.1: O(log |E|) bits per message.  Constant 8 is generous.
        for n in (50, 200, 800):
            net = random_grounded_tree(n, seed=0)
            result = run_protocol(net, TreeBroadcastProtocol())
            import math

            assert result.metrics.max_message_bits <= 8 * math.log2(net.num_edges)

    def test_total_bits_e_log_e(self):
        import math

        for n in (100, 400):
            net = random_grounded_tree(n, seed=0)
            result = run_protocol(net, TreeBroadcastProtocol())
            bound = net.num_edges * math.log2(net.num_edges)
            assert result.metrics.total_bits <= 4 * bound
