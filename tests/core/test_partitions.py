"""Tests for the paper's two partition schemes (Δ-split and canonical).

Includes the repaired-vs-literal behaviour documented in DESIGN.md §4.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dyadic import Dyadic
from repro.core.intervals import (
    EMPTY_UNION,
    UNIT_INTERVAL,
    UNIT_UNION,
    Interval,
    IntervalUnion,
    canonical_partition,
    canonical_partition_literal,
    split_interval,
)

from ..conftest import unit_interval_unions, unit_intervals


class TestSplitInterval:
    def test_one_part_identity(self):
        assert split_interval(UNIT_INTERVAL, 1) == [UNIT_INTERVAL]

    def test_two_parts_halves(self):
        parts = split_interval(UNIT_INTERVAL, 2)
        assert parts[0] == Interval(Dyadic(0), Dyadic(1, 1))
        assert parts[1] == Interval(Dyadic(1, 1), Dyadic(1))

    def test_three_parts_delta_scheme(self):
        # N = 4, Δ = 1/4: [0,1/4), [1/4,1/2), [1/2,1).
        parts = split_interval(UNIT_INTERVAL, 3)
        assert parts[0].measure() == Dyadic(1, 2)
        assert parts[1].measure() == Dyadic(1, 2)
        assert parts[2].measure() == Dyadic(1, 1)

    def test_empty_interval(self):
        empty = Interval(Dyadic(1, 1), Dyadic(1, 1))
        assert all(p.is_empty() for p in split_interval(empty, 4))

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_interval(UNIT_INTERVAL, 0)

    @given(unit_intervals(), st.integers(min_value=1, max_value=9))
    def test_parts_tile_the_interval(self, interval, k):
        parts = split_interval(interval, k)
        assert len(parts) == k
        # Consecutive endpoints chain exactly.
        cursor = interval.lo
        for part in parts:
            assert part.lo == cursor
            cursor = part.hi
        assert cursor == interval.hi

    @given(unit_intervals(), st.integers(min_value=2, max_value=9))
    def test_nonempty_input_gives_nonempty_parts(self, interval, k):
        if interval.is_empty():
            return
        assert all(not p.is_empty() for p in split_interval(interval, k))

    @given(unit_intervals(), st.integers(min_value=1, max_value=9))
    def test_measure_preserved(self, interval, k):
        parts = split_interval(interval, k)
        total = parts[0].measure()
        for p in parts[1:]:
            total = total + p.measure()
        assert total == interval.measure()


class TestCanonicalPartition:
    def test_one_part_identity(self):
        assert canonical_partition(UNIT_UNION, 1) == [UNIT_UNION]

    def test_empty_union(self):
        parts = canonical_partition(EMPTY_UNION, 4)
        assert parts == [EMPTY_UNION] * 4

    def test_single_component_repaired(self):
        # The erratum repair: with a single component every part non-empty.
        parts = canonical_partition(UNIT_UNION, 3)
        assert len(parts) == 3
        assert all(not p.is_empty() for p in parts)

    def test_multi_component_follows_paper(self):
        alpha = IntervalUnion.of(
            Interval(Dyadic(0), Dyadic(1, 2)),  # I1 = [0, 1/4)
            Interval(Dyadic(1, 1), Dyadic(3, 2)),  # I2
            Interval(Dyadic(7, 3), Dyadic(1)),  # I3
        )
        parts = canonical_partition(alpha, 3)
        # Parts 1..d-1 split I1; part d is I2 ∪ I3.
        assert parts[0].union(parts[1]) == IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 2)))
        assert parts[2] == IntervalUnion.of(
            Interval(Dyadic(1, 1), Dyadic(3, 2)), Interval(Dyadic(7, 3), Dyadic(1))
        )

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            canonical_partition(UNIT_UNION, 0)

    @given(unit_interval_unions(), st.integers(min_value=1, max_value=6))
    def test_partition_is_exact(self, alpha, d):
        parts = canonical_partition(alpha, d)
        assert len(parts) == d
        # Pairwise disjoint.
        for i in range(d):
            for j in range(i + 1, d):
                assert parts[i].intersection(parts[j]).is_empty()
        # Union restores the input.
        merged = EMPTY_UNION
        for p in parts:
            merged = merged.union(p)
        assert merged == alpha

    @given(unit_interval_unions(), st.integers(min_value=2, max_value=6))
    def test_nonempty_alpha_gives_nonempty_parts(self, alpha, d):
        if alpha.is_empty():
            return
        assert all(not p.is_empty() for p in canonical_partition(alpha, d))


class TestLiteralCanonicalPartition:
    def test_single_component_last_part_empty(self):
        # The erratum, verbatim: r = 1 leaves part d empty.
        parts = canonical_partition_literal(UNIT_UNION, 3)
        assert parts[-1].is_empty()
        assert all(not p.is_empty() for p in parts[:-1])

    @given(unit_interval_unions(), st.integers(min_value=1, max_value=6))
    def test_still_an_exact_partition(self, alpha, d):
        parts = canonical_partition_literal(alpha, d)
        merged = EMPTY_UNION
        for p in parts:
            merged = merged.union(p)
        assert merged == alpha
        for i in range(d):
            for j in range(i + 1, d):
                assert parts[i].intersection(parts[j]).is_empty()

    def test_matches_repaired_on_multi_component_input(self):
        alpha = IntervalUnion.of(
            Interval(Dyadic(0), Dyadic(1, 2)),
            Interval(Dyadic(1, 1), Dyadic(1)),
        )
        assert canonical_partition(alpha, 4) == canonical_partition_literal(alpha, 4)
