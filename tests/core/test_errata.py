"""The two Section 4 errata found by this reproduction (DESIGN.md §4).

These tests pin down, executably, why the canonical-partition rule as
*printed* in the paper is broken, and that the repaired rule restores every
guarantee Theorem 4.2 / 5.1 claim.
"""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol, extract_labels
from repro.graphs.generators import random_digraph, with_dead_end_vertex
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import Outcome, run_protocol


def counterexample_network() -> DirectedNetwork:
    """The minimal erratum witness: ``s→p``, ``p→{x, u}``, ``x→t``, ``u→t``.

    ``u`` hangs off ``p``'s *last* out-port; under the literal rule ``p``'s
    first (single-interval) canonical partition gives that port ∅.
    """
    return DirectedNetwork(
        5,
        [(0, 2), (2, 3), (2, 4), (3, 1), (4, 1)],
        root=0,
        terminal=1,
    )


class TestErratumOne:
    """Literal canonical partition starves last-port subtrees."""

    def test_literal_rule_breaks_delivery(self):
        net = counterexample_network()
        result = run_protocol(net, GeneralBroadcastProtocol("m", partition_rule="literal"))
        # The terminal terminates...
        assert result.outcome is Outcome.TERMINATED
        # ...while vertex u never received the broadcast — contradicting
        # Theorem 4.2's "on termination each vertex will have received m".
        assert not result.states[4].got_broadcast

    def test_repaired_rule_restores_delivery(self):
        net = counterexample_network()
        result = run_protocol(net, GeneralBroadcastProtocol("m", partition_rule="repaired"))
        assert result.outcome is Outcome.TERMINATED
        assert result.states[4].got_broadcast

    def test_literal_rule_breaks_iff_with_dead_end(self):
        # Dead end on the last port: literal terminates anyway (commodity
        # never routed there), repaired correctly refuses.
        net = DirectedNetwork(
            5,
            [(0, 2), (2, 3), (2, 4), (3, 1)],  # vertex 4 is a dead end
            root=0,
            terminal=1,
            validate=False,
        )
        literal = run_protocol(net, GeneralBroadcastProtocol(partition_rule="literal"))
        repaired = run_protocol(net, GeneralBroadcastProtocol(partition_rule="repaired"))
        assert literal.outcome is Outcome.TERMINATED  # the bug, reproduced
        assert repaired.outcome is Outcome.QUIESCENT  # the fix

    def test_literal_labeling_misses_vertices(self):
        net = counterexample_network()
        result = run_protocol(net, LabelAssignmentProtocol(partition_rule="literal"))
        labels = extract_labels(result.states)
        missing = set(net.internal_vertices()) - set(labels)
        assert missing, "literal rule should fail to label the starved vertex"

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError):
            GeneralBroadcastProtocol(partition_rule="bogus")


class TestErratumTwo:
    """β-only first messages must not consume the one-time partition."""

    def test_beta_first_vertex_still_gets_label(self):
        # Under the terminal-last scheduler, β floods race ahead of
        # commodity on cyclic graphs; with the repair every internal vertex
        # is labeled regardless.
        for seed in range(4):
            net = random_digraph(15, seed=seed)
            for scheduler in make_standard_schedulers(random_seeds=2):
                result = run_protocol(net, LabelAssignmentProtocol(), scheduler)
                assert result.terminated
                labels = extract_labels(result.states)
                assert set(labels) == set(net.internal_vertices()), scheduler.name

    def test_virgin_beta_flood_forwards(self):
        """A virgin vertex receiving a β-only message floods it onward and
        stays virgin (white-box check of the repair)."""
        from repro.core.general_broadcast import GeneralState
        from repro.core.intervals import EMPTY_UNION, UNIT_UNION
        from repro.core.messages import IntervalMessage
        from repro.core.model import VertexView

        protocol = GeneralBroadcastProtocol()
        view = VertexView(in_degree=1, out_degree=2)
        state = protocol.create_state(view)
        beta_only = IntervalMessage(alpha=EMPTY_UNION, beta=UNIT_UNION)
        state, emissions = protocol.on_receive(state, view, 0, beta_only)
        assert state.virgin
        assert state.label is None
        assert len(emissions) == 2
        assert all(msg.alpha.is_empty() and msg.beta == UNIT_UNION for _, msg in emissions)

    def test_duplicate_beta_flood_not_reforwarded(self):
        from repro.core.intervals import EMPTY_UNION, UNIT_UNION
        from repro.core.messages import IntervalMessage
        from repro.core.model import VertexView

        protocol = GeneralBroadcastProtocol()
        view = VertexView(in_degree=2, out_degree=2)
        state = protocol.create_state(view)
        beta_only = IntervalMessage(alpha=EMPTY_UNION, beta=UNIT_UNION)
        state, first = protocol.on_receive(state, view, 0, beta_only)
        state, second = protocol.on_receive(state, view, 1, beta_only)
        assert first and not second  # no β growth ⇒ no messages
