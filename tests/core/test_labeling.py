"""Tests for the label-assignment protocol (Section 5)."""

import pytest

from repro.core.intervals import union_cost
from repro.core.labeling import (
    LabelAssignmentProtocol,
    extract_labels,
    labels_pairwise_disjoint,
)
from repro.graphs.constructions import full_tree_with_terminal, pruned_tree
from repro.graphs.generators import (
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
)
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import Outcome, run_protocol


class TestLabelAssignment:
    @pytest.mark.parametrize("seed", range(5))
    def test_every_internal_vertex_labeled(self, seed):
        net = random_digraph(20, seed=seed)
        result = run_protocol(net, LabelAssignmentProtocol())
        assert result.terminated
        labels = extract_labels(result.states)
        assert set(labels) == set(net.internal_vertices())

    @pytest.mark.parametrize("seed", range(5))
    def test_labels_pairwise_disjoint(self, seed):
        net = random_digraph(20, seed=seed)
        result = run_protocol(net, LabelAssignmentProtocol())
        labels = extract_labels(result.states)
        assert labels_pairwise_disjoint(list(labels.values()))

    def test_under_all_schedulers(self):
        net = random_digraph(15, seed=8)
        for scheduler in make_standard_schedulers():
            result = run_protocol(net, LabelAssignmentProtocol(), scheduler)
            assert result.terminated, scheduler.name
            labels = extract_labels(result.states)
            assert set(labels) == set(net.internal_vertices()), scheduler.name
            assert labels_pairwise_disjoint(list(labels.values())), scheduler.name

    def test_label_is_single_interval(self):
        # Theorem 5.1's bit analysis: "each label is a single interval".
        net = random_digraph(20, seed=2)
        result = run_protocol(net, LabelAssignmentProtocol())
        for label in extract_labels(result.states).values():
            assert label.interval_count() == 1

    def test_paper_default_leaves_endpoints_unlabeled(self):
        net = random_digraph(15, seed=1)
        result = run_protocol(net, LabelAssignmentProtocol())
        assert result.states[net.root].label is None
        assert result.states[net.terminal].label is None

    def test_label_endpoints_extension(self):
        net = random_digraph(15, seed=1)
        result = run_protocol(net, LabelAssignmentProtocol(label_endpoints=True))
        assert result.terminated
        labels = extract_labels(result.states)
        # Root keeps a slice before injecting; terminal adopts first α.
        assert net.terminal in labels
        assert labels_pairwise_disjoint(list(labels.values()))

    def test_dead_end_blocks_termination(self):
        net = with_dead_end_vertex(random_digraph(12, seed=3))
        result = run_protocol(net, LabelAssignmentProtocol())
        assert result.outcome is Outcome.QUIESCENT

    def test_broadcast_subsumed(self):
        net = random_digraph(15, seed=5)
        result = run_protocol(net, LabelAssignmentProtocol("m"))
        for v in range(net.num_vertices):
            if v != net.root:
                assert result.states[v].got_broadcast


class TestLabelSizes:
    def test_label_bits_bounded_by_v_log_d(self):
        import math

        for seed in range(3):
            net = random_digraph(30, seed=seed)
            result = run_protocol(net, LabelAssignmentProtocol())
            bound = net.num_vertices * max(1.0, math.log2(net.max_out_degree()))
            for label in extract_labels(result.states).values():
                assert union_cost(label) <= 4 * bound + 32

    def test_full_tree_leaf_labels_distinct(self):
        net = full_tree_with_terminal(2, 6)
        result = run_protocol(net, LabelAssignmentProtocol())
        labels = extract_labels(result.states)
        leaf_labels = [
            labels[v]
            for v in net.internal_vertices()
            if net.out_degree(v) == 1
            and net.edge_head(net.out_edge_ids(v)[0]) == net.terminal
        ]
        assert len(leaf_labels) == 64
        assert labels_pairwise_disjoint(leaf_labels)

    def test_pruned_tree_deep_label_grows_with_height(self):
        bits = []
        for h in (4, 8, 16):
            net = pruned_tree(2, h)
            result = run_protocol(net, LabelAssignmentProtocol())
            label = result.states[2 + h].label
            bits.append(union_cost(label))
        assert bits[0] < bits[1] < bits[2]


class TestDisjointnessChecker:
    def test_detects_overlap(self):
        from repro.core.dyadic import Dyadic
        from repro.core.intervals import Interval, IntervalUnion

        a = IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 1)))
        b = IntervalUnion.of(Interval(Dyadic(1, 2), Dyadic(3, 2)))
        assert not labels_pairwise_disjoint([a, b])

    def test_accepts_touching(self):
        from repro.core.dyadic import Dyadic
        from repro.core.intervals import Interval, IntervalUnion

        a = IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 1)))
        b = IntervalUnion.of(Interval(Dyadic(1, 1), Dyadic(1)))
        assert labels_pairwise_disjoint([a, b])

    def test_multi_component_owners(self):
        from repro.core.dyadic import Dyadic
        from repro.core.intervals import Interval, IntervalUnion

        a = IntervalUnion.of(
            Interval(Dyadic(0), Dyadic(1, 2)), Interval(Dyadic(1, 1), Dyadic(3, 2))
        )
        b = IntervalUnion.of(Interval(Dyadic(1, 2), Dyadic(1, 1)))
        assert labels_pairwise_disjoint([a, b])
