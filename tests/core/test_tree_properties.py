"""Hypothesis property tests for the grounded-tree protocol's exactness.

Theorem 3.1's proof rests on three exact facts the class implementation
must deliver for *every* grounded tree, not just the sampled ones:

1. every transmitted commodity value is a power of two,
2. the per-vertex outgoing values sum exactly to the incoming value
   (commodity preservation),
3. the terminal's final sum is exactly 1, and exponents stay ``O(|E|)``
   (which is what makes messages ``O(log |E|)`` bits).

Trees are generated structurally by hypothesis (parent choice per vertex,
optional extra terminal edges), exploring shapes the seeded generator's
distribution rarely produces (long chains, stars, skewed combs).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DYADIC_ONE
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.properties import is_grounded_tree
from repro.network.graph import DirectedNetwork
from repro.network.simulator import run_protocol


@st.composite
def grounded_trees(draw, max_internal: int = 10) -> DirectedNetwork:
    """Structurally arbitrary grounded trees (s=0, t=1, internal 2..)."""
    n_internal = draw(st.integers(min_value=1, max_value=max_internal))
    n = n_internal + 2
    edges = [(0, 2)]
    children = {v: 0 for v in range(2, n)}
    for child in range(3, n):
        parent = draw(st.integers(min_value=2, max_value=child - 1))
        edges.append((parent, child))
        children[parent] += 1
    for v in range(2, n):
        if children[v] == 0 or draw(st.booleans()):
            edges.append((v, 1))
    return DirectedNetwork(n, edges, root=0, terminal=1, strict_root=True)


SETTINGS = settings(max_examples=80, deadline=None)


@SETTINGS
@given(grounded_trees())
def test_generated_trees_are_grounded(net):
    assert is_grounded_tree(net)
    assert net.all_connected_to_terminal()


@SETTINGS
@given(grounded_trees())
def test_all_values_are_powers_of_two(net):
    result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
    assert result.terminated
    for record in result.trace.deliveries:
        assert record.payload.value.is_power_of_two()


@SETTINGS
@given(grounded_trees())
def test_commodity_preserved_per_vertex(net):
    result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
    per_edge = {eid: result.trace.symbols_on_edge(eid)[0] for eid in range(net.num_edges)}
    for v in net.internal_vertices():
        incoming = per_edge[net.in_edge_ids(v)[0]].value
        outgoing = [per_edge[eid].value for eid in net.out_edge_ids(v)]
        total = outgoing[0]
        for value in outgoing[1:]:
            total = total + value
        assert total == incoming


@SETTINGS
@given(grounded_trees())
def test_terminal_sum_exactly_one_and_one_message_per_edge(net):
    result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
    assert result.states[net.terminal].received_sum == DYADIC_ONE
    assert result.metrics.total_messages == net.num_edges
    assert result.metrics.max_edge_messages == 1


@SETTINGS
@given(grounded_trees())
def test_exponents_linear_in_edges(net):
    result = run_protocol(net, TreeBroadcastProtocol(), record_trace=True)
    worst = max(record.payload.exponent for record in result.trace.deliveries)
    # Each vertex adds ⌈log₂ d⌉ ≤ log₂(2d) along a path; summed over a path
    # this is at most Σ (1 + log₂ d_v) ≤ |V| + |E| ≤ 2|E| + 2.
    assert worst <= 2 * net.num_edges + 2
