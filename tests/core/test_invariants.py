"""Tests for the runtime invariant checkers — and their use as per-delivery
hooks in exhaustive schedule exploration."""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol, GeneralState
from repro.core.invariants import (
    all_interval_invariants,
    alphas_pairwise_disjoint,
    commodity_conserved,
    coverage_within_unit,
    labels_disjoint_globally,
)
from repro.core.intervals import UNIT_UNION, IntervalUnion, Interval
from repro.core.dyadic import Dyadic
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.mapping import MappingProtocol
from repro.graphs.generators import random_digraph, with_dead_end_vertex
from repro.lowerbounds.schedules import explore_all_schedules
from repro.network.graph import DirectedNetwork
from repro.network.simulator import run_protocol


class TestOnFinishedRuns:
    @pytest.mark.parametrize("factory", [GeneralBroadcastProtocol, LabelAssignmentProtocol])
    @pytest.mark.parametrize("seed", range(3))
    def test_all_invariants_hold(self, factory, seed):
        net = random_digraph(15, seed=seed)
        result = run_protocol(net, factory())
        assert all_interval_invariants(result.states)
        assert commodity_conserved(result.states)

    def test_mapping_states_unwrapped(self):
        net = random_digraph(10, seed=1)
        result = run_protocol(net, MappingProtocol())
        assert all_interval_invariants(result.states)

    def test_conservation_holds_even_without_termination(self):
        net = with_dead_end_vertex(random_digraph(10, seed=2))
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert not result.terminated
        assert commodity_conserved(result.states)


class TestDetectViolations:
    def _state_with(self, alphas, label=None):
        state = GeneralState(len(alphas))
        state.alphas = list(alphas)
        state.label = label
        state.coverage = alphas[0] if alphas else state.coverage
        return state

    def test_overlapping_alphas_detected(self):
        half = IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 1)))
        overlapping = IntervalUnion.of(Interval(Dyadic(1, 2), Dyadic(1)))
        state = self._state_with([half, overlapping])
        assert not alphas_pairwise_disjoint({0: state})

    def test_out_of_unit_detected(self):
        outside = IntervalUnion.of(Interval(Dyadic(1), Dyadic(3, 1)))
        state = GeneralState(1)
        state.coverage = outside
        assert not coverage_within_unit({0: state})

    def test_global_label_overlap_detected(self):
        label = IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 1)))
        a = GeneralState(1)
        a.label = label
        b = GeneralState(1)
        b.label = label
        assert not labels_disjoint_globally({0: a, 1: b})

    def test_conservation_shortfall_detected(self):
        state = GeneralState(1)
        state.coverage = IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 1)))
        assert not commodity_conserved({0: state})

    def test_empty_population_is_conserved(self):
        assert commodity_conserved({0: GeneralState(2)})


class TestAsExplorationHook:
    """The strongest use: invariants checked after *every* delivery on
    *every* schedule of small instances."""

    def test_broadcast_invariants_all_schedules(self):
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 2), (2, 1)], root=0, terminal=1)
        result = explore_all_schedules(
            net, GeneralBroadcastProtocol, invariant=all_interval_invariants
        )
        assert result.always_terminates

    def test_labeling_invariants_all_schedules(self):
        net = DirectedNetwork(
            5, [(0, 2), (2, 3), (3, 4), (4, 2), (3, 1)], root=0, terminal=1
        )
        result = explore_all_schedules(
            net, LabelAssignmentProtocol, invariant=all_interval_invariants
        )
        assert result.always_terminates
