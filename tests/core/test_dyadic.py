"""Unit and property tests for exact dyadic rationals."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dyadic import DYADIC_ONE, DYADIC_ZERO, Dyadic

from ..conftest import dyadics


class TestConstruction:
    def test_zero_is_canonical(self):
        assert Dyadic(0, 17) == DYADIC_ZERO
        assert Dyadic(0, 17).exp == 0

    def test_even_numerator_is_reduced(self):
        d = Dyadic(4, 3)  # 4/8 == 1/2
        assert d.num == 1
        assert d.exp == 1

    def test_negative_exponent_scales_up(self):
        assert Dyadic(3, -2) == Dyadic(12)

    def test_integer_round_trip(self):
        assert int(Dyadic.from_int(7)) == 7

    def test_non_integer_int_raises(self):
        with pytest.raises(ValueError):
            int(Dyadic(1, 1))

    def test_type_check(self):
        with pytest.raises(TypeError):
            Dyadic(1.5)  # type: ignore[arg-type]

    def test_pow2(self):
        assert Dyadic.pow2(3) == Dyadic(8)
        assert Dyadic.pow2(-3) == Dyadic(1, 3)

    def test_from_fraction(self):
        assert Dyadic.from_fraction(Fraction(3, 8)) == Dyadic(3, 3)

    def test_from_fraction_rejects_non_dyadic(self):
        with pytest.raises(ValueError):
            Dyadic.from_fraction(Fraction(1, 3))


class TestArithmetic:
    def test_add(self):
        assert Dyadic(1, 1) + Dyadic(1, 2) == Dyadic(3, 2)

    def test_add_int(self):
        assert Dyadic(1, 1) + 1 == Dyadic(3, 1)
        assert 1 + Dyadic(1, 1) == Dyadic(3, 1)

    def test_sub(self):
        assert Dyadic(3, 2) - Dyadic(1, 2) == Dyadic(1, 1)
        assert 1 - Dyadic(1, 2) == Dyadic(3, 2)

    def test_mul(self):
        assert Dyadic(3, 1) * Dyadic(1, 2) == Dyadic(3, 3)
        assert Dyadic(3, 1) * 2 == Dyadic(3)

    def test_neg_abs(self):
        assert -Dyadic(3, 1) == Dyadic(-3, 1)
        assert abs(Dyadic(-3, 1)) == Dyadic(3, 1)

    def test_half(self):
        assert Dyadic(3, 1).half() == Dyadic(3, 2)

    def test_midpoint(self):
        assert DYADIC_ZERO.midpoint(DYADIC_ONE) == Dyadic(1, 1)

    def test_scaled_pow2(self):
        assert Dyadic(3).scaled_pow2(-2) == Dyadic(3, 2)
        assert Dyadic(3, 2).scaled_pow2(2) == Dyadic(3)

    def test_divide_pow2_parts(self):
        assert Dyadic(1).divide_pow2_parts(4) == Dyadic(1, 2)

    def test_divide_pow2_parts_rejects_non_power(self):
        with pytest.raises(ValueError):
            Dyadic(1).divide_pow2_parts(3)


class TestComparison:
    def test_ordering(self):
        assert Dyadic(1, 2) < Dyadic(1, 1) < Dyadic(1)
        assert Dyadic(1) <= Dyadic(1)
        assert Dyadic(1) >= Dyadic(1, 1)
        assert Dyadic(-1) < DYADIC_ZERO

    def test_int_comparison(self):
        assert Dyadic(1, 1) < 1
        assert Dyadic(3, 1) > 1
        assert Dyadic(2) == 2

    def test_hash_int_compatible(self):
        assert hash(Dyadic(5)) == hash(5)

    def test_bool(self):
        assert not DYADIC_ZERO
        assert Dyadic(1, 5)


class TestPowerOfTwo:
    def test_detect(self):
        assert Dyadic(1, 3).is_power_of_two()
        assert Dyadic(8).is_power_of_two()
        assert not Dyadic(3, 1).is_power_of_two()
        assert not DYADIC_ZERO.is_power_of_two()

    def test_log2(self):
        assert Dyadic(8).log2() == 3
        assert Dyadic(1, 4).log2() == -4

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            Dyadic(3).log2()


class TestProperties:
    @given(dyadics(), dyadics())
    def test_add_matches_fractions(self, a, b):
        assert (a + b).as_fraction() == a.as_fraction() + b.as_fraction()

    @given(dyadics(), dyadics())
    def test_sub_matches_fractions(self, a, b):
        assert (a - b).as_fraction() == a.as_fraction() - b.as_fraction()

    @given(dyadics(), dyadics())
    def test_mul_matches_fractions(self, a, b):
        assert (a * b).as_fraction() == a.as_fraction() * b.as_fraction()

    @given(dyadics(), dyadics())
    def test_ordering_matches_fractions(self, a, b):
        assert (a < b) == (a.as_fraction() < b.as_fraction())

    @given(dyadics())
    def test_canonical_form(self, a):
        assert a.exp >= 0
        if a.exp > 0:
            assert a.num % 2 == 1

    @given(dyadics())
    def test_equality_is_structural(self, a):
        clone = Dyadic(a.num, a.exp)
        assert clone == a
        assert hash(clone) == hash(a)

    @given(dyadics())
    def test_float_close(self, a):
        assert float(a) == pytest.approx(float(a.as_fraction()))
