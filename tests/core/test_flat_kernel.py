"""Unit tests for the shared flat-kernel base and the scalar kernels.

The byte-identity contract is held by the differential suite
(``tests/api/test_engine_differential.py``) and the run-mode edge cases
(``tests/api/test_kernel_completeness.py``); this module tests the flat
machinery itself: the dyadic-pair arithmetic against :class:`Dyadic`, the
inlined bit costs against :mod:`repro.core.encoding`, state
materialisation, and snapshot/restore round trips.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.baselines.flooding import FloodingProtocol
from repro.baselines.naive_tree import NaiveTreeBroadcastProtocol
from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.core.dyadic import Dyadic
from repro.core.encoding import dyadic_cost, signed_cost, unsigned_cost
from repro.core.flat_kernel import (
    DagBroadcastKernel,
    FloodingKernel,
    NaiveTreeKernel,
    TreeBroadcastKernel,
    _add,
    _dcost,
    _norm,
    _scost,
    _sub,
    _ucost,
)
from repro.core.tree_broadcast import TreeBroadcastProtocol, pow2_split_exponents
from repro.network.fastpath import CompiledNetwork
from repro.network.graph import DirectedNetwork


def diamond():
    """s -> a, s -> b, a -> t, b -> t (root 0, terminal 3)."""
    return DirectedNetwork(4, [(0, 1), (0, 2), (1, 3), (2, 3)], root=0, terminal=3)


PAIRS = [(0, 0), (1, 0), (1, 1), (3, 2), (5, 4), (-3, 2), (7, 0), (255, 8)]


class TestPairArithmetic:
    """The int-pair dyadics mirror repro.core.dyadic exactly."""

    @pytest.mark.parametrize("num,exp", [(4, 1), (6, 3), (8, 0), (0, 5), (-8, 2)])
    def test_norm_matches_dyadic_canonical_form(self, num, exp):
        d = Dyadic(num, exp)
        assert _norm(num, exp) == (d.num, d.exp)

    @pytest.mark.parametrize("a", PAIRS)
    @pytest.mark.parametrize("b", PAIRS)
    def test_add_sub_match_dyadic(self, a, b):
        da, db = Dyadic(*a), Dyadic(*b)
        s, d = da + db, da - db
        assert _add(a[0], a[1], b[0], b[1]) == (s.num, s.exp)
        assert _sub(a[0], a[1], b[0], b[1]) == (d.num, d.exp)


class TestCosts:
    """The inlined cost arithmetic mirrors repro.core.encoding exactly."""

    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 100, 10_000])
    def test_ucost(self, value):
        assert _ucost(value) == unsigned_cost(value)

    @pytest.mark.parametrize("value", [0, 1, -1, 5, -5, 1000, -1000])
    def test_scost(self, value):
        assert _scost(value) == signed_cost(value)

    @pytest.mark.parametrize("num,exp", PAIRS)
    def test_dcost(self, num, exp):
        d = Dyadic(num, exp)
        assert _dcost(d.num, d.exp) == dyadic_cost(d)


class TestTreeKernel:
    def test_initial_emission_bits_match_protocol(self):
        protocol = TreeBroadcastProtocol(broadcast_payload="hi")
        kernel = TreeBroadcastKernel(protocol, CompiledNetwork(diamond()))
        emissions = kernel.initial_emissions(0)
        reference = protocol.initial_emissions(
            CompiledNetwork(diamond()).views[0]
        )
        assert [(p, e) for p, e, _ in emissions] == [
            (p, tok.exponent) for p, tok in reference
        ]
        for (_, _, bits), (_, tok) in zip(emissions, reference):
            assert bits == protocol.message_bits(tok)

    def test_split_exponents_shared_per_out_degree(self):
        net = DirectedNetwork(
            6, [(0, 1), (1, 2), (1, 3), (4, 2), (4, 3), (2, 5), (3, 5)],
            root=0, terminal=5, validate=False,
        )
        kernel = TreeBroadcastKernel(TreeBroadcastProtocol(), CompiledNetwork(net))
        # Vertices 1 and 4 both have out-degree 2: one shared tuple.
        assert kernel.port_exponents[1] is kernel.port_exponents[4]
        assert kernel.port_exponents[1] == tuple(pow2_split_exponents(2))

    def test_terminal_check_and_finalize(self):
        kernel = TreeBroadcastKernel(
            TreeBroadcastProtocol("m"), CompiledNetwork(diamond())
        )
        assert not kernel.check_terminal(3)
        kernel.deliver(3, 0, 1)  # 2^-1
        assert not kernel.check_terminal(3)
        kernel.deliver(3, 1, 1)  # sums to 1
        assert kernel.check_terminal(3)
        states = kernel.finalize_states()
        assert states[3].received_sum == Dyadic(1)
        assert states[3].payload == "m"
        assert states[0].payload is None and not states[0].got_broadcast

    def test_snapshot_restore_round_trip(self):
        kernel = TreeBroadcastKernel(
            TreeBroadcastProtocol(), CompiledNetwork(diamond())
        )
        snap = kernel.snapshot()
        kernel.deliver(1, 0, 0)
        assert kernel.snapshot() != snap
        kernel.restore(snap)
        assert kernel.snapshot() == snap


class TestDagKernel:
    def test_fires_only_when_all_in_edges_heard(self):
        net = DirectedNetwork(4, [(0, 1), (0, 2), (1, 2), (2, 3)], root=0, terminal=3)
        kernel = DagBroadcastKernel(DagBroadcastProtocol(), CompiledNetwork(net))
        # vertex 2 has in-degree 2: first delivery buffers, second fires.
        assert kernel.deliver(2, 0, (1, 1)) == ()
        out = kernel.deliver(2, 1, (1, 1))
        assert len(out) == 1
        port, value, bits = out[0]
        assert port == 0 and value == (1, 0)  # 1/2 + 1/2, split by 1 port
        assert bits == dyadic_cost(Dyadic(1))

    def test_third_delivery_never_refires(self):
        net = DirectedNetwork(4, [(0, 1), (0, 2), (1, 2), (2, 3)], root=0, terminal=3)
        kernel = DagBroadcastKernel(DagBroadcastProtocol(), CompiledNetwork(net))
        kernel.deliver(2, 0, (1, 1))
        kernel.deliver(2, 1, (1, 1))
        assert kernel.deliver(2, 0, (1, 2)) == ()
        assert kernel.fired[2]


class TestNaiveKernel:
    def test_shares_are_reduced_fractions(self):
        net = DirectedNetwork(
            5, [(0, 1), (1, 2), (1, 3), (1, 4)], root=0, terminal=4, validate=False
        )
        kernel = NaiveTreeKernel(NaiveTreeBroadcastProtocol(), CompiledNetwork(net))
        out = kernel.deliver(1, 0, (1, 2))  # 1/2 across 3 ports
        assert [value for _, value, _ in out] == [(1, 6)] * 3
        expected_bits = signed_cost(1) + unsigned_cost(6)
        assert all(bits == expected_bits for _, _, bits in out)

    def test_sum_accumulates_exactly(self):
        kernel = NaiveTreeKernel(
            NaiveTreeBroadcastProtocol(), CompiledNetwork(diamond())
        )
        kernel.deliver(3, 0, (1, 3))
        kernel.deliver(3, 1, (2, 3))
        assert kernel.sums[3] == (1, 1)
        assert kernel.check_terminal(3)
        assert kernel.finalize_states()[3].received_sum == Fraction(1)


class TestFloodKernel:
    def test_forwards_exactly_once(self):
        kernel = FloodingKernel(FloodingProtocol(), CompiledNetwork(diamond()))
        first = kernel.deliver(1, 0, None)
        assert [(p, b) for p, _, b in first] == [(0, 1)]
        assert kernel.deliver(1, 0, None) == ()

    def test_never_terminates(self):
        kernel = FloodingKernel(FloodingProtocol(), CompiledNetwork(diamond()))
        kernel.deliver(3, 0, None)
        kernel.deliver(3, 1, None)
        assert not kernel.check_terminal(3)

    def test_state_bits_is_never_consulted(self):
        kernel = FloodingKernel(FloodingProtocol(), CompiledNetwork(diamond()))
        with pytest.raises(NotImplementedError):
            kernel.state_bits(0)
