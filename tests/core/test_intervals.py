"""Unit tests for intervals and interval unions."""

import pytest

from repro.core.dyadic import DYADIC_ONE, DYADIC_ZERO, Dyadic
from repro.core.intervals import (
    EMPTY_UNION,
    UNIT_INTERVAL,
    UNIT_UNION,
    Interval,
    IntervalUnion,
)


def iv(a_num, a_exp, b_num, b_exp):
    return Interval(Dyadic(a_num, a_exp), Dyadic(b_num, b_exp))


def union(*pairs):
    return IntervalUnion([iv(*p) for p in pairs])


class TestInterval:
    def test_unit(self):
        assert UNIT_INTERVAL.lo == DYADIC_ZERO
        assert UNIT_INTERVAL.hi == DYADIC_ONE
        assert UNIT_INTERVAL.measure() == DYADIC_ONE

    def test_reversed_endpoints_rejected(self):
        with pytest.raises(ValueError):
            Interval(DYADIC_ONE, DYADIC_ZERO)

    def test_non_dyadic_rejected(self):
        with pytest.raises(TypeError):
            Interval(0, 1)  # type: ignore[arg-type]

    def test_empty(self):
        empty = Interval(Dyadic(1, 1), Dyadic(1, 1))
        assert empty.is_empty()
        assert empty.measure() == DYADIC_ZERO
        # The paper's convention: [a, a) is the unique empty interval.
        assert empty == Interval(DYADIC_ZERO, DYADIC_ZERO)
        assert hash(empty) == hash(Interval(DYADIC_ZERO, DYADIC_ZERO))

    def test_contains_point_half_open(self):
        i = iv(0, 0, 1, 1)  # [0, 1/2)
        assert i.contains(DYADIC_ZERO)
        assert i.contains(Dyadic(1, 2))
        assert not i.contains(Dyadic(1, 1))  # hi excluded

    def test_contains_interval(self):
        assert UNIT_INTERVAL.contains_interval(iv(1, 2, 1, 1))
        assert UNIT_INTERVAL.contains_interval(Interval(DYADIC_ZERO, DYADIC_ZERO))
        assert not iv(0, 0, 1, 1).contains_interval(UNIT_INTERVAL)

    def test_intersection(self):
        a = iv(0, 0, 3, 2)  # [0, 3/4)
        b = iv(1, 1, 1, 0)  # [1/2, 1)
        both = a.intersection(b)
        assert both == iv(1, 1, 3, 2)
        assert a.intersects(b)
        assert not iv(0, 0, 1, 1).intersects(iv(1, 1, 1, 0))  # touching, no overlap

    def test_str(self):
        assert str(iv(0, 0, 1, 1)) == "[0, 1/2^1)"


class TestIntervalUnionConstruction:
    def test_empty(self):
        assert EMPTY_UNION.is_empty()
        assert not EMPTY_UNION
        assert len(EMPTY_UNION) == 0
        assert EMPTY_UNION.measure() == DYADIC_ZERO

    def test_unit(self):
        assert UNIT_UNION.is_unit()
        assert UNIT_UNION.measure() == DYADIC_ONE

    def test_empty_intervals_dropped(self):
        u = IntervalUnion([Interval(DYADIC_ZERO, DYADIC_ZERO)])
        assert u.is_empty()

    def test_adjacent_merged(self):
        u = union((0, 0, 1, 1), (1, 1, 1, 0))
        assert u.is_unit()
        assert u.interval_count() == 1

    def test_overlapping_merged(self):
        u = union((0, 0, 3, 2), (1, 1, 1, 0))
        assert u.is_unit()

    def test_disjoint_kept_sorted(self):
        u = union((1, 1, 3, 2), (0, 0, 1, 2))
        assert u.interval_count() == 2
        assert u.intervals[0].lo == DYADIC_ZERO

    def test_single_of_empty(self):
        assert IntervalUnion.single(Interval(DYADIC_ZERO, DYADIC_ZERO)) is EMPTY_UNION


class TestIntervalUnionAlgebra:
    def test_union(self):
        a = union((0, 0, 1, 2))
        b = union((1, 1, 3, 2))
        assert a.union(b) == union((0, 0, 1, 2), (1, 1, 3, 2))

    def test_union_interval(self):
        a = union((0, 0, 1, 2))
        assert a.union_interval(iv(1, 2, 1, 1)) == union((0, 0, 1, 1))

    def test_intersection(self):
        a = union((0, 0, 1, 1), (3, 2, 1, 0))  # [0,1/2) ∪ [3/4,1)
        b = union((1, 2, 7, 3))  # [1/4, 7/8)
        assert a.intersection(b) == union((1, 2, 1, 1), (3, 2, 7, 3))

    def test_difference(self):
        assert UNIT_UNION.difference(union((1, 2, 1, 1))) == union((0, 0, 1, 2), (1, 1, 1, 0))

    def test_difference_empty_cases(self):
        a = union((0, 0, 1, 1))
        assert a.difference(EMPTY_UNION) == a
        assert EMPTY_UNION.difference(a) == EMPTY_UNION
        assert a.difference(a).is_empty()

    def test_symmetric_difference(self):
        a = union((0, 0, 1, 1))
        b = union((1, 2, 3, 2))
        sym = a.symmetric_difference(b)
        assert sym == union((0, 0, 1, 2), (1, 1, 3, 2))

    def test_contains_point_binary_search(self):
        u = union((0, 0, 1, 2), (1, 1, 3, 2))
        assert u.contains(DYADIC_ZERO)
        assert u.contains(Dyadic(1, 1))
        assert not u.contains(Dyadic(1, 2))
        assert not u.contains(Dyadic(3, 2))

    def test_contains_union(self):
        big = union((0, 0, 1, 0))
        small = union((1, 2, 1, 1))
        assert big.contains_union(small)
        assert not small.contains_union(big)
        assert big.contains_union(EMPTY_UNION)

    def test_measure_additive(self):
        u = union((0, 0, 1, 2), (1, 1, 3, 2))
        assert u.measure() == Dyadic(1, 1)

    def test_equality_structural(self):
        assert union((0, 0, 1, 1)) == union((0, 0, 1, 2), (1, 2, 1, 1))
        assert hash(union((0, 0, 1, 1))) == hash(union((0, 0, 1, 2), (1, 2, 1, 1)))

    def test_str(self):
        assert str(EMPTY_UNION) == "∅"
        assert "∪" in str(union((0, 0, 1, 2), (1, 1, 3, 2)))
