"""Tests for the bound-formula module (every theorem's expression)."""

import math

import pytest

from repro.core.complexity import (
    dag_broadcast_bandwidth_bound,
    dag_broadcast_total_bits_bound,
    general_broadcast_symbol_bits_bound,
    general_broadcast_total_bits_bound,
    graph_parameters,
    label_length_bits_bound,
    tree_broadcast_bandwidth_bound,
    tree_broadcast_total_bits_bound,
    undirected_label_length_bound,
)
from repro.graphs.generators import path_network, random_digraph


@pytest.fixture
def net():
    return random_digraph(20, seed=0)


class TestParameters:
    def test_graph_parameters(self, net):
        params = graph_parameters(net)
        assert params["V"] == net.num_vertices
        assert params["E"] == net.num_edges
        assert params["d_out"] == net.max_out_degree()


class TestFormulas:
    def test_tree_total(self, net):
        e = net.num_edges
        assert tree_broadcast_total_bits_bound(net) == pytest.approx(e * math.log2(e))

    def test_tree_total_with_payload(self, net):
        e = net.num_edges
        with_payload = tree_broadcast_total_bits_bound(net, payload_bits=8)
        assert with_payload == pytest.approx(e * math.log2(e) + 8 * e)

    def test_tree_bandwidth(self, net):
        assert tree_broadcast_bandwidth_bound(net) == pytest.approx(
            math.log2(net.num_edges)
        )

    def test_dag_bounds(self, net):
        e = net.num_edges
        assert dag_broadcast_total_bits_bound(net) == pytest.approx(e * e)
        assert dag_broadcast_bandwidth_bound(net, payload_bits=3) == pytest.approx(e + 3)

    def test_general_bounds(self, net):
        e, v, d = net.num_edges, net.num_vertices, net.max_out_degree()
        logd = max(1.0, math.log2(max(2.0, d)))
        assert general_broadcast_total_bits_bound(net) == pytest.approx(e * e * v * logd)
        assert general_broadcast_symbol_bits_bound(net) == pytest.approx(e * v * logd)

    def test_label_bound(self, net):
        v, d = net.num_vertices, net.max_out_degree()
        logd = max(1.0, math.log2(max(2.0, d)))
        assert label_length_bits_bound(net) == pytest.approx(v * logd)

    def test_undirected_bound(self):
        assert undirected_label_length_bound(1024) == pytest.approx(10.0)


class TestClamps:
    def test_log_clamped_on_tiny_graphs(self):
        tiny = path_network(1)  # 3 vertices, 2 edges
        # log₂(2) = 1 — clamp keeps bounds from vanishing.
        assert tree_broadcast_bandwidth_bound(tiny) >= 1.0
        assert label_length_bits_bound(tiny) >= tiny.num_vertices

    def test_monotone_in_size(self):
        small = random_digraph(10, seed=1)
        large = random_digraph(40, seed=1)
        assert general_broadcast_total_bits_bound(large) > general_broadcast_total_bits_bound(small)
        assert label_length_bits_bound(large) > label_length_bits_bound(small)
