"""Round-trip and cost tests for the self-delimiting encoders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dyadic import Dyadic
from repro.core.encoding import (
    BitReader,
    BitWriter,
    decode_dyadic,
    decode_signed,
    decode_unsigned,
    dyadic_cost,
    elias_delta_length,
    elias_gamma_length,
    encode_dyadic,
    encode_signed,
    encode_unsigned,
    signed_cost,
    unsigned_cost,
)
from repro.core.intervals import (
    Interval,
    IntervalUnion,
    decode_interval,
    decode_union,
    encode_interval,
    encode_union,
    interval_cost,
    union_cost,
)

from ..conftest import dyadics, unit_interval_unions, unit_intervals


class TestBitBuffers:
    def test_write_read_bits(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        r = w.reader()
        assert r.read_bits(4) == 0b1011
        assert r.exhausted()

    def test_value_too_wide_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_read_past_end_raises(self):
        r = BitReader([True])
        r.read_bit()
        with pytest.raises(EOFError):
            r.read_bit()


class TestUnsigned:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 100, 12345, 2**20])
    def test_round_trip(self, value):
        w = BitWriter()
        encode_unsigned(w, value)
        assert decode_unsigned(w.reader()) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_unsigned(BitWriter(), -1)

    @given(st.integers(min_value=0, max_value=2**30))
    def test_cost_matches_bits(self, value):
        w = BitWriter()
        encode_unsigned(w, value)
        assert len(w) == unsigned_cost(value)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=5))
    def test_self_delimiting_stream(self, values):
        w = BitWriter()
        for v in values:
            encode_unsigned(w, v)
        r = w.reader()
        assert [decode_unsigned(r) for _ in values] == values
        assert r.exhausted()

    def test_gamma_delta_lengths(self):
        assert elias_gamma_length(1) == 1
        assert elias_gamma_length(2) == 3
        assert elias_delta_length(1) == 1
        # Delta is asymptotically shorter than gamma.
        assert elias_delta_length(2**20) < elias_gamma_length(2**20)


class TestSigned:
    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 100, -12345])
    def test_round_trip(self, value):
        w = BitWriter()
        encode_signed(w, value)
        assert decode_signed(w.reader()) == value

    @given(st.integers(min_value=-(2**25), max_value=2**25))
    def test_cost_matches_bits(self, value):
        w = BitWriter()
        encode_signed(w, value)
        assert len(w) == signed_cost(value)


class TestDyadicEncoding:
    @given(dyadics())
    def test_round_trip(self, value):
        w = BitWriter()
        encode_dyadic(w, value)
        assert decode_dyadic(w.reader()) == value

    @given(dyadics())
    def test_cost_matches_bits(self, value):
        w = BitWriter()
        encode_dyadic(w, value)
        assert len(w) == dyadic_cost(value) == value.bit_cost()

    def test_cost_grows_with_precision(self):
        shallow = dyadic_cost(Dyadic(1, 2))
        deep = dyadic_cost(Dyadic((1 << 40) + 1, 41))
        assert deep > shallow


class TestIntervalEncoding:
    @given(unit_intervals())
    def test_round_trip(self, interval):
        w = BitWriter()
        encode_interval(w, interval)
        decoded = decode_interval(w.reader())
        assert decoded.lo == interval.lo and decoded.hi == interval.hi
        assert len(w) == interval_cost(interval)

    @given(unit_interval_unions())
    def test_union_round_trip(self, union):
        w = BitWriter()
        encode_union(w, union)
        assert decode_union(w.reader()) == union
        assert len(w) == union_cost(union)

    def test_union_cost_counts_components(self):
        one = IntervalUnion.of(Interval(Dyadic(0), Dyadic(1, 2)))
        two = one.union(IntervalUnion.of(Interval(Dyadic(3, 2), Dyadic(1))))
        assert union_cost(two) > union_cost(one)
