"""Tests for the DAG broadcast protocol (Section 3.3)."""

import pytest

from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.core.dyadic import DYADIC_ONE
from repro.graphs.constructions import skeleton_tree, skeleton_tree_hairs
from repro.graphs.generators import (
    layered_diamond_dag,
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
)
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import Outcome, run_protocol


class TestTermination:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags(self, seed):
        net = random_dag(50, seed=seed)
        result = run_protocol(net, DagBroadcastProtocol())
        assert result.terminated
        assert result.states[net.terminal].acc == DYADIC_ONE

    def test_one_message_per_edge(self):
        net = random_dag(60, seed=3)
        result = run_protocol(net, DagBroadcastProtocol())
        assert result.metrics.total_messages == net.num_edges
        assert result.metrics.max_edge_messages == 1

    def test_all_schedulers(self):
        net = random_dag(30, seed=7)
        for scheduler in make_standard_schedulers():
            result = run_protocol(net, DagBroadcastProtocol(), scheduler)
            assert result.terminated, scheduler.name

    def test_works_on_grounded_trees_too(self):
        net = random_grounded_tree(40, seed=5)
        result = run_protocol(net, DagBroadcastProtocol())
        assert result.terminated

    def test_diamond_dag(self):
        net = layered_diamond_dag(8)
        result = run_protocol(net, DagBroadcastProtocol())
        assert result.terminated
        assert result.metrics.total_messages == net.num_edges

    def test_dead_end_blocks_termination(self):
        net = with_dead_end_vertex(random_dag(20, seed=1))
        result = run_protocol(net, DagBroadcastProtocol())
        assert result.outcome is Outcome.QUIESCENT

    def test_cycle_deadlocks_no_false_termination(self):
        # The waiting rule deadlocks on cycles: quiescence, never a false
        # "terminated" — documenting why general graphs need Section 4.
        net = random_digraph(20, seed=2)
        assert not net.is_acyclic()
        result = run_protocol(net, DagBroadcastProtocol())
        assert result.outcome is Outcome.QUIESCENT


class TestDelivery:
    def test_everyone_receives_payload(self):
        net = random_dag(40, seed=4)
        result = run_protocol(net, DagBroadcastProtocol("msg"))
        for v in range(net.num_vertices):
            if v != net.root:
                assert result.states[v].got_broadcast, v

    def test_vertices_fire_once(self):
        net = random_dag(40, seed=6)
        result = run_protocol(net, DagBroadcastProtocol())
        for v in net.internal_vertices():
            state = result.states[v]
            assert state.heard == net.in_degree(v)
            assert state.fired == (net.out_degree(v) > 0)


class TestBandwidthShape:
    def test_skeleton_tree_linear_bandwidth(self):
        # Theorem 3.8 witness: max message bits grow ~linearly with n.
        sizes = [4, 8, 16]
        widths = []
        for n in sizes:
            net = skeleton_tree(n, subset=skeleton_tree_hairs(n))
            result = run_protocol(net, DagBroadcastProtocol())
            assert result.terminated
            widths.append(result.metrics.max_message_bits)
        # Doubling n should roughly double the width (well beyond log growth).
        assert widths[2] > 1.5 * widths[1] > 2.0 * widths[0] * 0.75

    def test_commodity_exact_sum(self):
        net = skeleton_tree(5, subset=skeleton_tree_hairs(5))
        result = run_protocol(net, DagBroadcastProtocol())
        assert result.states[net.terminal].acc == DYADIC_ONE
