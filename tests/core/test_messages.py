"""Tests for typed message payloads and their bit accounting."""

import pytest

from repro.core.dyadic import Dyadic
from repro.core.intervals import EMPTY_UNION, UNIT_UNION, IntervalUnion, Interval
from repro.core.messages import IntervalMessage, ScalarToken, TreeToken, payload_repr


class TestTreeToken:
    def test_value(self):
        assert TreeToken(exponent=0).value == Dyadic(1)
        assert TreeToken(exponent=3).value == Dyadic(1, 3)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            TreeToken(exponent=-1)

    def test_hashable_and_eq(self):
        assert TreeToken(2) == TreeToken(2)
        assert len({TreeToken(1), TreeToken(1), TreeToken(2)}) == 2

    def test_bits_grow_with_exponent(self):
        assert TreeToken(1000).structure_bits() > TreeToken(1).structure_bits()


class TestScalarToken:
    def test_bits_grow_with_precision(self):
        narrow = ScalarToken(Dyadic(1, 1))
        wide = ScalarToken(Dyadic((1 << 30) + 1, 31))
        assert wide.structure_bits() > narrow.structure_bits()

    def test_hashable(self):
        assert len({ScalarToken(Dyadic(1, 1)), ScalarToken(Dyadic(1, 1))}) == 1


class TestIntervalMessage:
    def test_vacuous(self):
        assert IntervalMessage(EMPTY_UNION, EMPTY_UNION).is_vacuous()
        assert not IntervalMessage(UNIT_UNION, EMPTY_UNION).is_vacuous()

    def test_bits_count_both_unions(self):
        a = IntervalMessage(UNIT_UNION, EMPTY_UNION)
        b = IntervalMessage(UNIT_UNION, UNIT_UNION)
        assert b.structure_bits() > a.structure_bits()

    def test_hashable(self):
        m1 = IntervalMessage(UNIT_UNION, EMPTY_UNION)
        m2 = IntervalMessage(UNIT_UNION, EMPTY_UNION)
        assert m1 == m2
        assert len({m1, m2}) == 1


def test_payload_repr_truncates():
    assert payload_repr("x" * 100).endswith("...")
    assert payload_repr("short") == "'short'"
