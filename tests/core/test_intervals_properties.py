"""Property-based tests: interval-union algebra obeys set-theoretic laws.

The protocols' correctness rests entirely on this algebra being an exact
model of finite unions of half-open subsets of ``[0, 1)`` — these tests pin
the Boolean-algebra laws and the measure's behaviour with hypothesis.
"""

from hypothesis import given, settings

from repro.core.dyadic import DYADIC_ZERO
from repro.core.intervals import EMPTY_UNION, UNIT_UNION, IntervalUnion

from ..conftest import unit_dyadics, unit_interval_unions


@given(unit_interval_unions(), unit_interval_unions())
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(unit_interval_unions(), unit_interval_unions())
def test_intersection_commutative(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(unit_interval_unions(), unit_interval_unions(), unit_interval_unions())
def test_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(unit_interval_unions(), unit_interval_unions(), unit_interval_unions())
def test_intersection_distributes_over_union(a, b, c):
    assert a.intersection(b.union(c)) == a.intersection(b).union(a.intersection(c))


@given(unit_interval_unions())
def test_identity_elements(a):
    assert a.union(EMPTY_UNION) == a
    assert a.intersection(EMPTY_UNION) == EMPTY_UNION


@given(unit_interval_unions(), unit_interval_unions())
def test_difference_disjoint_from_subtrahend(a, b):
    assert a.difference(b).intersection(b).is_empty()


@given(unit_interval_unions(), unit_interval_unions())
def test_difference_plus_intersection_restores(a, b):
    assert a.difference(b).union(a.intersection(b)) == a


@given(unit_interval_unions(), unit_interval_unions())
def test_inclusion_exclusion_measure(a, b):
    lhs = a.union(b).measure() + a.intersection(b).measure()
    rhs = a.measure() + b.measure()
    assert lhs == rhs


@given(unit_interval_unions(), unit_interval_unions())
def test_containment_consistency(a, b):
    merged = a.union(b)
    assert merged.contains_union(a)
    assert merged.contains_union(b)
    assert a.contains_union(a.intersection(b))


@given(unit_interval_unions(), unit_dyadics())
def test_point_membership_consistent_with_algebra(a, point):
    complement = UNIT_UNION.difference(a)
    in_a = a.contains(point)
    in_complement = complement.contains(point)
    # Points at exactly 1 lie in neither (the universe is [0, 1)).
    if point < 1:
        assert in_a != in_complement
    else:
        assert not in_a and not in_complement


@given(unit_interval_unions())
def test_canonical_form_invariants(a):
    previous_hi = None
    for interval in a:
        assert not interval.is_empty()
        assert interval.lo < interval.hi
        if previous_hi is not None:
            # Strict gap: touching intervals must have been merged.
            assert interval.lo > previous_hi
        previous_hi = interval.hi


@given(unit_interval_unions(), unit_interval_unions())
def test_symmetric_difference_definition(a, b):
    sym = a.symmetric_difference(b)
    assert sym == a.union(b).difference(a.intersection(b))


@given(unit_interval_unions())
def test_measure_nonnegative_and_bounded(a):
    assert a.measure() >= DYADIC_ZERO
    assert a.intersection(UNIT_UNION).measure() <= UNIT_UNION.measure()
