"""Tests for materialising a reconstructed map into a DirectedNetwork."""

import pytest

from repro.core.mapping import ROOT_MARKER, TERMINAL_MARKER, MappingProtocol
from repro.graphs.generators import path_network, random_dag, random_digraph
from repro.network.simulator import run_protocol


def reconstruct(net):
    result = run_protocol(net, MappingProtocol())
    assert result.terminated
    return result, result.output.to_network()


class TestToNetwork:
    @pytest.mark.parametrize("seed", range(3))
    def test_edge_multiset_isomorphic(self, seed):
        net = random_digraph(12, seed=seed)
        result, (rebuilt, ids) = reconstruct(net)
        # Map ground-truth vertex → rebuilt vertex via the label identity.
        identity = {net.root: ROOT_MARKER, net.terminal: TERMINAL_MARKER}
        for v in net.internal_vertices():
            identity[v] = result.states[v].base.label
        mapping = {v: ids[identity[v]] for v in range(net.num_vertices)}
        assert net.same_topology_under(rebuilt, mapping)

    def test_out_ports_exact(self):
        net = random_dag(10, seed=1)
        result, (rebuilt, ids) = reconstruct(net)
        identity = {net.root: ROOT_MARKER, net.terminal: TERMINAL_MARKER}
        for v in net.internal_vertices():
            identity[v] = result.states[v].base.label
        for v in range(net.num_vertices):
            rebuilt_v = ids[identity[v]]
            truth_heads = [identity[h] for h in net.out_neighbors(v)]
            rebuilt_heads = [
                next(k for k, idx in ids.items() if idx == h)
                for h in rebuilt.out_neighbors(rebuilt_v)
            ]
            assert truth_heads == rebuilt_heads  # same heads, same port order

    def test_root_terminal_placement(self):
        net = path_network(4)
        _, (rebuilt, ids) = reconstruct(net)
        assert rebuilt.root == ids[ROOT_MARKER] == 0
        assert rebuilt.terminal == ids[TERMINAL_MARKER] == rebuilt.num_vertices - 1
        assert rebuilt.out_degree(rebuilt.terminal) == 0
        assert rebuilt.in_degree(rebuilt.root) == 0

    def test_sizes_match(self):
        net = random_digraph(10, seed=5)
        _, (rebuilt, _) = reconstruct(net)
        assert rebuilt.num_vertices == net.num_vertices
        assert rebuilt.num_edges == net.num_edges
