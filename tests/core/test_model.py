"""Tests for the formal protocol model (VertexView, FunctionalProtocol)."""

import pytest

from repro.core.model import FunctionalProtocol, VertexView
from repro.network.graph import DirectedNetwork
from repro.network.simulator import Outcome, run_protocol


class TestVertexView:
    def test_fields(self):
        view = VertexView(in_degree=2, out_degree=3)
        assert view.in_degree == 2
        assert view.out_degree == 3

    def test_frozen(self):
        view = VertexView(in_degree=1, out_degree=1)
        with pytest.raises(Exception):
            view.in_degree = 5  # type: ignore[misc]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VertexView(in_degree=-1, out_degree=0)


class TestFunctionalProtocol:
    """A literal (f, g, S) hop-counter: each vertex forwards a counter + 1;
    the terminal stops when it has seen a message at all — exercising the
    paper's exact formal interface end to end."""

    @staticmethod
    def _make():
        return FunctionalProtocol(
            initial_state=0,
            initial_message=1,
            state_fn=lambda state, msg, in_port: max(state, msg),
            message_fn=lambda state, msg, in_port, out_port: msg + 1,
            stopping_predicate=lambda state: state > 0,
            message_bits_fn=lambda msg: max(1, int(msg).bit_length()),
            name="hop-counter",
        )

    def test_runs_on_path(self):
        # s -> a -> b -> t
        net = DirectedNetwork(4, [(0, 2), (2, 3), (3, 1)], root=0, terminal=1)
        result = run_protocol(net, self._make())
        assert result.outcome is Outcome.TERMINATED
        # Terminal saw the hop count: 1 at a, 2 at b, 3 at t.
        assert result.states[1] == 3

    def test_initial_state_may_depend_on_view(self):
        protocol = FunctionalProtocol(
            initial_state=lambda view: view.out_degree,
            initial_message="go",
            state_fn=lambda state, msg, i: state,
            message_fn=lambda state, msg, i, j: None,
            stopping_predicate=lambda state: True,
            message_bits_fn=lambda msg: 1,
        )
        net = DirectedNetwork(3, [(0, 2), (2, 1)], root=0, terminal=1)
        result = run_protocol(net, protocol)
        # Vertex 2 (out-degree 1) kept its degree-dependent initial state...
        assert result.states[2] == 1
        # ...and sent nothing on (φ everywhere), so only σ0 was delivered.
        assert result.metrics.total_messages == 1

    def test_phi_suppresses_messages(self):
        protocol = FunctionalProtocol(
            initial_state=0,
            initial_message=0,
            state_fn=lambda state, msg, i: state + 1,
            message_fn=lambda state, msg, i, j: msg if j == 0 else None,
            stopping_predicate=lambda state: state >= 1,
            message_bits_fn=lambda msg: 1,
        )
        # Vertex 2 has two out-edges; only out-port 0 may carry messages.
        net = DirectedNetwork(4, [(0, 2), (2, 1), (2, 3)], root=0, terminal=1)
        result = run_protocol(net, protocol)
        assert result.terminated
        assert result.states[3] == 0  # port-1 target never received anything

    def test_g_sees_pre_transition_state(self):
        observed = []

        def g(state, msg, i, j):
            observed.append(state)
            return msg

        protocol = FunctionalProtocol(
            initial_state=0,
            initial_message=7,
            state_fn=lambda state, msg, i: 99,
            message_fn=g,
            stopping_predicate=lambda state: state == 99,
            message_bits_fn=lambda msg: 3,
        )
        net = DirectedNetwork(3, [(0, 2), (2, 1)], root=0, terminal=1)
        run_protocol(net, protocol)
        # g at vertex 2 ran against π (0), not π' (99), as the paper defines.
        assert observed == [0]
