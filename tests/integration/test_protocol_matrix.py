"""Integration matrix: every protocol × every graph class × every scheduler.

The paper's correctness statements are ∀-schedule claims over graph classes;
this module is the systematic sweep.  Protocol applicability:

* grounded trees — all four protocols are sound;
* DAGs — DAG/general/labeling/mapping sound (tree protocol becomes the
  eager ablation variant: still terminates, message count may blow up);
* general digraphs — general/labeling/mapping sound; the DAG protocol
  deadlocks (correct non-termination by quiescence).
"""

import pytest

from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol, extract_labels, labels_pairwise_disjoint
from repro.core.mapping import MappingProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import random_dag, random_digraph, random_grounded_tree
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import run_protocol

SCHEDULER_COUNT = len(make_standard_schedulers(random_seeds=2))

TREE_PROTOCOLS = [
    TreeBroadcastProtocol,
    DagBroadcastProtocol,
    GeneralBroadcastProtocol,
    LabelAssignmentProtocol,
    MappingProtocol,
]
DAG_PROTOCOLS = [
    DagBroadcastProtocol,
    GeneralBroadcastProtocol,
    LabelAssignmentProtocol,
    MappingProtocol,
]
GENERAL_PROTOCOLS = [GeneralBroadcastProtocol, LabelAssignmentProtocol, MappingProtocol]


@pytest.mark.parametrize("factory", TREE_PROTOCOLS)
@pytest.mark.parametrize("scheduler_index", range(SCHEDULER_COUNT))
def test_grounded_tree_matrix(factory, scheduler_index):
    net = random_grounded_tree(20, seed=31)
    scheduler = make_standard_schedulers(random_seeds=2)[scheduler_index]
    result = run_protocol(net, factory("m"), scheduler)
    assert result.terminated, (factory.__name__, scheduler.name)


@pytest.mark.parametrize("factory", DAG_PROTOCOLS)
@pytest.mark.parametrize("scheduler_index", range(SCHEDULER_COUNT))
def test_dag_matrix(factory, scheduler_index):
    net = random_dag(18, seed=17)
    scheduler = make_standard_schedulers(random_seeds=2)[scheduler_index]
    result = run_protocol(net, factory("m"), scheduler)
    assert result.terminated, (factory.__name__, scheduler.name)


@pytest.mark.parametrize("factory", GENERAL_PROTOCOLS)
@pytest.mark.parametrize("scheduler_index", range(SCHEDULER_COUNT))
def test_general_matrix(factory, scheduler_index):
    net = random_digraph(15, seed=23)
    scheduler = make_standard_schedulers(random_seeds=2)[scheduler_index]
    result = run_protocol(net, factory("m"), scheduler)
    assert result.terminated, (factory.__name__, scheduler.name)


@pytest.mark.parametrize("factory", GENERAL_PROTOCOLS)
def test_broadcast_delivery_invariant(factory):
    """Whenever a protocol terminates, every vertex has the payload — the
    delivery half of every correctness theorem."""
    for seed in range(3):
        net = random_digraph(15, seed=seed)
        result = run_protocol(net, factory("payload"))
        assert result.terminated
        for v in range(net.num_vertices):
            if v == net.root:
                continue
            state = result.states[v]
            got = getattr(state, "got_broadcast", None)
            if got is None:  # mapping wraps the labeling state
                got = state.base.got_broadcast
            assert got, (factory.__name__, seed, v)


def test_labeling_invariants_across_schedulers_and_seeds():
    for seed in range(3):
        net = random_digraph(12, seed=seed)
        expected = set(net.internal_vertices())
        for scheduler in make_standard_schedulers(random_seeds=2):
            result = run_protocol(net, LabelAssignmentProtocol(), scheduler)
            labels = extract_labels(result.states)
            assert set(labels) == expected
            assert labels_pairwise_disjoint(list(labels.values()))


def test_labels_stable_under_fifo_replay():
    """Determinism: identical (graph, protocol, scheduler) ⇒ identical labels."""
    net = random_digraph(15, seed=4)

    def labels_once():
        result = run_protocol(net, LabelAssignmentProtocol())
        return {v: str(l) for v, l in extract_labels(result.states).items()}

    assert labels_once() == labels_once()
