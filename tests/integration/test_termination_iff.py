"""The "iff" of Theorems 3.1 / 4.2 / 5.1, swept systematically.

Termination must occur exactly when every vertex is connected to ``t``.
Good graphs (connected) must terminate under every scheduler; the same
graphs with a dead end or a stranded cycle grafted on must never terminate.
"""

import pytest

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.mapping import MappingProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import (
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
    with_stranded_cycle,
)
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import make_standard_schedulers
from repro.network.simulator import Outcome, run_protocol

GENERAL_FACTORIES = [GeneralBroadcastProtocol, LabelAssignmentProtocol, MappingProtocol]


@pytest.mark.parametrize("factory", GENERAL_FACTORIES)
@pytest.mark.parametrize("seed", range(3))
def test_connected_graphs_terminate(factory, seed):
    net = random_digraph(12, seed=seed)
    assert net.all_connected_to_terminal()
    for scheduler in make_standard_schedulers(random_seeds=1):
        result = run_protocol(net, factory(), scheduler)
        assert result.outcome is Outcome.TERMINATED, scheduler.name


@pytest.mark.parametrize("factory", GENERAL_FACTORIES)
@pytest.mark.parametrize("mutator", [with_dead_end_vertex, with_stranded_cycle])
@pytest.mark.parametrize("seed", range(3))
def test_disconnected_graphs_never_terminate(factory, mutator, seed):
    net = mutator(random_digraph(12, seed=seed))
    assert not net.all_connected_to_terminal()
    for scheduler in make_standard_schedulers(random_seeds=1):
        result = run_protocol(net, factory(), scheduler)
        assert result.outcome is Outcome.QUIESCENT, scheduler.name


def test_tree_protocol_iff_on_trees():
    net = random_grounded_tree(25, seed=9)
    assert run_protocol(net, TreeBroadcastProtocol()).terminated
    # Graft a dead-end leaf onto some internal vertex: still a grounded
    # tree shape (in-degree 1) but not all-connected.
    bad_edges = list(net.edges) + [(net.internal_vertices()[0], net.num_vertices)]
    bad = DirectedNetwork(
        net.num_vertices + 1, bad_edges, root=net.root, terminal=net.terminal, validate=False
    )
    result = run_protocol(bad, TreeBroadcastProtocol())
    assert result.outcome is Outcome.QUIESCENT


def test_dead_end_on_every_attachment_point():
    """The erratum regression, strengthened: wherever the dead end attaches
    (any internal vertex — any port position), termination is blocked."""
    base = random_digraph(8, seed=2)
    for attach in base.internal_vertices():
        bad = with_dead_end_vertex(base, attach_to=attach)
        result = run_protocol(bad, GeneralBroadcastProtocol())
        assert result.outcome is Outcome.QUIESCENT, f"attach={attach}"


def test_multiple_dead_regions():
    net = with_stranded_cycle(with_dead_end_vertex(random_digraph(10, seed=6)))
    result = run_protocol(net, LabelAssignmentProtocol())
    assert result.outcome is Outcome.QUIESCENT
