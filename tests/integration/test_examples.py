"""The examples are part of the deliverable: each must run cleanly.

Runs every script in ``examples/`` as a subprocess and checks exit status
and the presence of its headline output.  Slow-ish (the sensor-field
example runs a dense broadcast) but essential: examples that rot are worse
than no examples.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": [
        "broadcast: terminated",
        "labeling: all",
        "iff-direction",
        "run-spec:",
        "batch: 16 seeds in one vectorized group",
    ],
    "campaign_quickstart.py": [
        "expands to 12 runs",
        "resume: 12 runs reused, 0 re-executed",
        "all inside the paper bound",
    ],
    "fault_injection.py": [
        "fault counters:",
        "determinism + engine equivalence hold",
        "labels stay disjoint under churn",
        "terminated 4/4",
    ],
    "adhoc_sensor_field.py": ["sink confirmed rollout", "did NOT confirm"],
    "p2p_overlay_mapping.py": ["map verified: exact match"],
    "lowerbound_gallery.py": ["FIGURE 5", "FIGURE 4", "FIGURE 6", "repaired rule"],
    "synchronous_rounds.py": ["longest s→…→t path", "disjoint slice"],
}


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(CASES), "update CASES when adding/removing examples"


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in CASES[script]:
        assert marker in proc.stdout, f"{script} output missing {marker!r}"
