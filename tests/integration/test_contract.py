"""Every shipped protocol passes the conformance battery; broken ones fail it."""

import pytest

from repro.baselines.naive_tree import NaiveTreeBroadcastProtocol
from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.mapping import MappingProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import (
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
)
from repro.testing import ContractViolation, check_protocol_contract


class TestShippedProtocolsConform:
    def test_tree_broadcast(self):
        report = check_protocol_contract(
            TreeBroadcastProtocol,
            good_networks=[random_grounded_tree(15, seed=s) for s in range(2)],
        )
        assert "determinism" in report.checks
        assert "anonymity-invariance" in report.checks

    def test_dag_broadcast(self):
        report = check_protocol_contract(
            DagBroadcastProtocol,
            good_networks=[random_dag(15, seed=s) for s in range(2)],
        )
        assert report.runs > 0

    def test_general_broadcast(self):
        report = check_protocol_contract(
            GeneralBroadcastProtocol,
            good_networks=[random_digraph(10, seed=s) for s in range(2)],
            bad_networks=[with_dead_end_vertex(random_digraph(8, seed=0))],
        )
        assert "non-termination-on-bad-graphs" in report.checks

    def test_labeling(self):
        check_protocol_contract(
            LabelAssignmentProtocol,
            good_networks=[random_digraph(10, seed=1)],
            bad_networks=[with_dead_end_vertex(random_digraph(8, seed=1))],
        )

    def test_mapping(self):
        check_protocol_contract(
            MappingProtocol,
            good_networks=[random_digraph(8, seed=2)],
            bad_networks=[with_dead_end_vertex(random_digraph(6, seed=2))],
        )

    def test_naive_baseline(self):
        check_protocol_contract(
            NaiveTreeBroadcastProtocol,
            good_networks=[random_grounded_tree(10, seed=3)],
        )


class TestViolationsAreCaught:
    def test_literal_partition_fails_negative_contract(self):
        """The erratum, re-expressed as a contract violation: the literal
        rule terminates on a last-port dead end."""
        from repro.network.graph import DirectedNetwork

        bad = DirectedNetwork(
            5, [(0, 2), (2, 3), (2, 4), (3, 1)], root=0, terminal=1, validate=False
        )
        with pytest.raises(ContractViolation):
            check_protocol_contract(
                lambda: GeneralBroadcastProtocol(partition_rule="literal"),
                good_networks=[],
                bad_networks=[bad],
            )

    def test_identity_using_protocol_fails_anonymity(self):
        """A protocol that sneaks global state across instances to behave
        differently per run is caught by the determinism check."""
        from repro.core.model import FunctionalProtocol

        counter = {"n": 0}

        def make():
            counter["n"] += 1
            salt = counter["n"]
            return FunctionalProtocol(
                initial_state=0,
                initial_message=1,
                state_fn=lambda state, msg, i: msg,
                message_fn=lambda state, msg, i, j: msg + salt,
                stopping_predicate=lambda state: state >= 1,
                message_bits_fn=lambda msg: max(1, int(msg).bit_length()),
            )

        with pytest.raises(ContractViolation):
            check_protocol_contract(
                make, good_networks=[random_grounded_tree(6, seed=0)]
            )

    def test_nonterminating_protocol_fails_positive_contract(self):
        from repro.baselines.flooding import FloodingProtocol

        with pytest.raises(ContractViolation):
            check_protocol_contract(
                FloodingProtocol, good_networks=[random_digraph(8, seed=0)]
            )
