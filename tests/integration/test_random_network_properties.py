"""Property-based testing of the central theorems on *arbitrary* networks.

Hypothesis generates small directed networks with arbitrary internal wiring
— connected to the terminal or not — and the tests assert the theorems'
exact statements:

* termination ⟺ every vertex connected to ``t`` (Theorems 4.2/5.1),
* on termination, every vertex holds the broadcast payload,
* labels are assigned to every internal vertex and are pairwise disjoint,
* the terminal's coverage is exactly ``[0, 1)`` on termination and strictly
  less otherwise.

This goes beyond the seeded generator tests: hypothesis explores degenerate
wirings (multi-edges, self-loops, bottlenecks, deeply nested cycles) and
shrinks failures to minimal graphs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.intervals import UNIT_UNION
from repro.core.labeling import (
    LabelAssignmentProtocol,
    extract_labels,
    labels_pairwise_disjoint,
)
from repro.network.graph import DirectedNetwork
from repro.network.scheduler import FifoScheduler, LifoScheduler, RandomScheduler
from repro.network.simulator import Outcome, run_protocol


@st.composite
def arbitrary_networks(draw, max_internal: int = 6) -> DirectedNetwork:
    """Small networks satisfying only the *structural* model assumptions.

    Root 0 (no in-edges, out-degree 1 into the first internal vertex),
    terminal 1 (no out-edges), every vertex reachable from the root
    (patched deterministically), arbitrary internal wiring otherwise —
    including self-loops, multi-edges and vertices that cannot reach ``t``.
    """
    n_internal = draw(st.integers(min_value=1, max_value=max_internal))
    n = n_internal + 2
    internal = list(range(2, n))
    edges = [(0, 2)]

    possible = [(a, b) for a in internal for b in internal]  # self-loops allowed
    extra = draw(st.lists(st.sampled_from(possible), min_size=0, max_size=3 * n_internal))
    edges.extend(extra)

    sink_feeders = draw(
        st.lists(st.sampled_from(internal), min_size=1, max_size=n_internal, unique=True)
    )
    edges.extend((v, 1) for v in sink_feeders)

    # Patch reachability from the root (a standing model assumption), in a
    # deterministic draw-independent way.
    while True:
        net = DirectedNetwork(n, edges, root=0, terminal=1, validate=False)
        unreachable = sorted(set(range(2, n)) - net.reachable_from(0))
        if not unreachable:
            break
        anchor = min(v for v in net.reachable_from(0) if v not in (0, 1))
        edges.append((anchor, unreachable[0]))
    return DirectedNetwork(n, edges, root=0, terminal=1, strict_root=True)


def scheduler_for(code: int):
    if code == 0:
        return FifoScheduler()
    if code == 1:
        return LifoScheduler()
    return RandomScheduler(seed=code)


COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON_SETTINGS
@given(arbitrary_networks(), st.integers(min_value=0, max_value=4))
def test_broadcast_terminates_iff_connected(net, sched_code):
    result = run_protocol(net, GeneralBroadcastProtocol("m"), scheduler_for(sched_code))
    expected = net.all_connected_to_terminal()
    assert result.terminated == expected, net.to_dot()


@COMMON_SETTINGS
@given(arbitrary_networks(), st.integers(min_value=0, max_value=4))
def test_delivery_on_termination(net, sched_code):
    result = run_protocol(net, GeneralBroadcastProtocol("m"), scheduler_for(sched_code))
    if result.terminated:
        for v in range(net.num_vertices):
            if v != net.root:
                assert result.states[v].got_broadcast, (v, net.to_dot())


@COMMON_SETTINGS
@given(arbitrary_networks(), st.integers(min_value=0, max_value=4))
def test_terminal_coverage_exact(net, sched_code):
    result = run_protocol(net, GeneralBroadcastProtocol(), scheduler_for(sched_code))
    covered = result.states[net.terminal].covered()
    if result.terminated:
        assert covered == UNIT_UNION
    else:
        assert covered != UNIT_UNION
        assert UNIT_UNION.contains_union(covered)


@COMMON_SETTINGS
@given(arbitrary_networks(), st.integers(min_value=0, max_value=4))
def test_labeling_iff_and_uniqueness(net, sched_code):
    result = run_protocol(net, LabelAssignmentProtocol(), scheduler_for(sched_code))
    expected = net.all_connected_to_terminal()
    assert result.terminated == expected, net.to_dot()
    if result.terminated:
        labels = extract_labels(result.states)
        assert set(labels) == set(net.internal_vertices()), net.to_dot()
        assert labels_pairwise_disjoint(list(labels.values()))


@COMMON_SETTINGS
@given(arbitrary_networks())
def test_commodity_conservation_at_quiescence(net):
    """Global conservation: the unit interval is exactly partitioned among
    terminal coverage, retained labels, and commodity stuck in dead regions
    (α of out-degree-0 vertices and α absorbed by unvisited ports)."""
    result = run_protocol(net, GeneralBroadcastProtocol())
    covered = result.states[net.terminal].covered()
    # Everything the terminal misses must be sitting in *some* vertex's
    # routed-or-received sets — nothing vanishes.
    union = covered
    for v in range(net.num_vertices):
        if v == net.terminal:
            continue
        state = result.states[v]
        union = union.union(state.coverage).union(state.beta).union(state.alpha_acc)
    assert union == UNIT_UNION
