"""E5 — Theorems 4.2/4.3: interval broadcast on general (cyclic) digraphs.

Paper claim: total communication O(|E|²·|V|·log d_out) + |E|·|m|; per-symbol
and per-edge bits O(|E|·|V|·log d_out) + |m|.  Expected shape: measured
totals stay under the bound (ratio < 1, not growing); per-edge cumulative
bits under the symbol bound.
"""


from conftest import run_experiment


def test_bench_e05_general_broadcast(benchmark, engine):
    rows = run_experiment(benchmark, "e05", engine=engine)
    for row in rows:
        assert row["ratio"] < 1.0
        import math

        symbol_bound = row["E"] * row["V"] * max(1.0, math.log2(4))
        assert row["max_edge_bits"] <= symbol_bound
    # The bound dominates harder as the family grows (its exponent is loose
    # for random graphs) — the ratio must not grow.
    ratios = [row["ratio"] for row in rows]
    assert ratios[-1] <= ratios[0] * 1.5
