"""E2 — Theorem 3.2 / Figure 5: the Gₙ alphabet lower bound.

Paper claim: any correct broadcasting protocol needs Ω(n) distinct symbols
on Gₙ, hence Ω(|E| log |E|) total bits.  Expected shape: measured distinct
symbols ≥ n on every Gₙ; the Huffman floor (best any encoding could do for
the observed stream) normalised by |E|·log₂|E| approaches a constant.
"""


from conftest import run_experiment


def test_bench_e02_tree_lowerbound(benchmark):
    rows = run_experiment(benchmark, "e02")
    for row in rows:
        assert row["at_least_n"]
        assert row["measured_bits"] >= row["huffman_floor_bits"]
    norm = [row["floor/(E·logE)"] for row in rows]
    assert norm == sorted(norm), "normalised floor should approach its constant from below"
    assert norm[-1] > 0.5
