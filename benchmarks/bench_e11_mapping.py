"""E11 — Section 6: full topology extraction.

Paper claim (programme): labels + flooding of local information map the
whole topology.  Expected shape: 100% of runs reconstruct a topology
exactly matching the ground truth (vertices, out-degrees, port-level edge
wiring) under the label correspondence.
"""

from repro.analysis.experiments import experiment_e11_mapping

from conftest import run_experiment


def test_bench_e11_mapping(benchmark, engine):
    rows = run_experiment(benchmark, "E11 topology mapping (§6)", experiment_e11_mapping, engine=engine)
    for row in rows:
        assert row["exact_reconstructions"] == row["runs"]
