"""E11 — Section 6: full topology extraction.

Paper claim (programme): labels + flooding of local information map the
whole topology.  Expected shape: 100% of runs reconstruct a topology
exactly matching the ground truth (vertices, out-degrees, port-level edge
wiring) under the label correspondence.
"""


from conftest import run_experiment


def test_bench_e11_mapping(benchmark, engine):
    rows = run_experiment(benchmark, "e11", engine=engine)
    for row in rows:
        assert row["exact_reconstructions"] == row["runs"]
