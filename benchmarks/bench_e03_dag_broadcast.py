"""E3 — Section 3.3: DAG broadcast via aggregated scalar commodity.

Paper claim: bandwidth O(|E|) + |m|, total communication O(|E|²) + |E|·|m|,
one message per edge under the waiting rule.  Expected shape: exactly |E|
messages; total bits well under the |E|² bound with the ratio shrinking
(random DAGs are far from the skeleton-tree worst case, which E4 covers).
"""


from conftest import run_experiment


def test_bench_e03_dag_broadcast(benchmark, engine):
    rows = run_experiment(benchmark, "e03", engine=engine)
    for row in rows:
        assert row["one_msg_per_edge"]
        assert row["ratio"] < 1.0
        assert row["max_msg_bits"] <= row["E"]
