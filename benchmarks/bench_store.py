"""Result-store micro-benchmarks: put / contains / get at 10k records.

The pytest-benchmark twin of the ``store`` block ``repro bench`` records
into ``BENCH_engines.json``: the same synthetic records (distinct seeds,
full RunSpecs — representative hashing, serialization and shard fan-out),
the same three operations a warm campaign resume exercises, measured at
:data:`~repro.analysis.benchmark.STORE_BENCH_RECORDS` records.  The
closing test asserts the same integrity bar the CI floor file gates:
every record just stored must come back from ``get_many`` byte-identical
(``store_min_cache_hit_rate``).
"""

from __future__ import annotations

import pytest

from repro.analysis.benchmark import STORE_BENCH_RECORDS, synthetic_store_records
from repro.store import ResultStore

N_RECORDS = STORE_BENCH_RECORDS


@pytest.fixture(scope="module")
def records():
    return synthetic_store_records(N_RECORDS)


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory, records):
    """A store already holding every benchmark record (read-side suites)."""
    store = ResultStore(str(tmp_path_factory.mktemp("store-bench-warm")))
    store.put_many(records)
    return store


def test_bench_store_put_many(benchmark, tmp_path_factory, records):
    def populate():
        store = ResultStore(str(tmp_path_factory.mktemp("store-bench-put")))
        return store.put_many(records)

    stored = benchmark.pedantic(populate, rounds=1, iterations=1)
    assert stored == N_RECORDS
    benchmark.extra_info["n_records"] = N_RECORDS
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["put_per_sec"] = N_RECORDS / benchmark.stats["mean"]


def test_bench_store_contains_many(benchmark, warm_store, records):
    specs = [record.spec for record in records]
    found = benchmark(lambda: warm_store.contains_many(specs))
    assert len(found) == N_RECORDS
    benchmark.extra_info["n_records"] = N_RECORDS
    if benchmark.stats is not None:
        benchmark.extra_info["contains_per_sec"] = N_RECORDS / benchmark.stats["mean"]


def test_bench_store_get_many(benchmark, warm_store, records):
    specs = [record.spec for record in records]
    got = benchmark(lambda: warm_store.get_many(specs))
    assert len(got) == N_RECORDS
    benchmark.extra_info["n_records"] = N_RECORDS
    if benchmark.stats is not None:
        benchmark.extra_info["get_per_sec"] = N_RECORDS / benchmark.stats["mean"]


def test_store_cache_hit_rate_floor(warm_store, records):
    """The integrity bar behind store_min_cache_hit_rate: everything stored
    is retrievable, and retrieval is exact (same JSON, timing fields and all
    — synthetic records carry fixed timings, so equality is total)."""
    got = warm_store.get_many(record.spec for record in records)
    hit_rate = len(got) / N_RECORDS
    assert hit_rate >= 0.95, f"cache hit rate {hit_rate:.3f} below 0.95"
    by_id = {record.spec.spec_id: record for record in records}
    for spec_id, fetched in got.items():
        assert fetched.to_json() == by_id[spec_id].to_json()
