"""E1 — Theorem 3.1: grounded-tree broadcast, total cost vs |E| log |E|.

Paper claim: total communication O(|E| log |E|) + |E|·|m|, bandwidth
O(log |E|) + |m|.  Expected shape: measured_bits / (|E|·log₂|E|) flat within
a small constant band as the family grows; max message bits ≤ c·log |E|.
"""

import math

from repro.analysis.scaling import is_flat

from conftest import run_experiment


def test_bench_e01_tree_broadcast(benchmark, engine):
    rows = run_experiment(benchmark, "e01", engine=engine)
    ratios = [row["ratio"] for row in rows]
    assert is_flat(ratios, tolerance=3.0), ratios
    for row in rows:
        assert row["max_msg_bits"] <= 8 * math.log2(row["E"])
