"""E18 — faults: labeling uniqueness under node churn.

Expected shape: baseline rows terminate with zero churned deliveries;
churn scenarios swallow deliveries (and count rejoins where the vertex
returns), but the safety invariants — pairwise-disjoint labels, coverage
within the unit interval — hold in every row.
"""


from conftest import run_experiment


def test_bench_e18_churn_labeling(benchmark, engine):
    rows = run_experiment(benchmark, "e18", engine=engine)
    assert all(row["labels_disjoint"] for row in rows)
    assert all(row["coverage_safe"] for row in rows)
    baseline = [row for row in rows if row["scenario"] == "baseline"]
    assert baseline and all(row["terminated"] for row in baseline)
    churned = [row for row in rows if row["scenario"] != "baseline"]
    assert churned and all(row["churned_deliveries"] > 0 for row in churned)
