"""E4 — Theorem 3.8 / Figure 4: skeleton-tree Ω(|E|) bandwidth bound.

Paper claim: any commodity-preserving protocol admits 2ⁿ distinct subset
sums at the collector w, forcing Ω(n)-bit symbols on an O(n)-edge graph.
Expected shape: all subset sums pairwise distinct; the decay chain (1)
holds; max message bits grow linearly (log-log slope ≈ 1) in n.
"""

from repro.analysis.scaling import loglog_slope

from conftest import run_experiment


def test_bench_e04_commodity_lowerbound(benchmark):
    rows = run_experiment(benchmark, "e04")
    marked = [row for row in rows if row["distinct_sums"] != ""]
    assert marked and marked[0]["distinct_sums"] == marked[0]["subset_count"]
    assert marked[0]["chain_(1)_holds"]
    slope = loglog_slope([row["n"] for row in rows], [row["max_msg_bits"] for row in rows])
    assert 0.5 <= slope <= 1.3, slope
