"""Engine throughput suite: async vs fastpath vs synchronous.

The spec-level twin of ``repro bench``: measures steps/sec for each
execution engine on the E5 general-broadcast workload under
pytest-benchmark (so the numbers land in the same bench log as the
experiment suites), and asserts the same bars the CI floor file gates —
the fast path must beat the reference engine by ≥2× at n = 64 while
producing the identical record.
"""

from __future__ import annotations

import pytest

from repro.analysis.benchmark import bench_spec
from repro.api import execute_spec

SIZES = (16, 64)
ENGINES = ("async", "fastpath", "synchronous")


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("bench_engine", ENGINES)
def test_bench_engine_general_broadcast(benchmark, bench_engine, n):
    spec = bench_spec(n, bench_engine)
    record = benchmark(lambda: execute_spec(spec))
    assert record.terminated
    steps = record.metrics["steps"]
    benchmark.extra_info["engine"] = bench_engine
    benchmark.extra_info["n"] = n
    benchmark.extra_info["steps"] = steps
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["steps_per_sec"] = steps / benchmark.stats["mean"]


@pytest.mark.parametrize("n", SIZES)
def test_fastpath_at_least_twice_async(benchmark, n):
    """The PR acceptance bar, asserted in-suite as well as by the CI gate."""
    from repro.analysis.benchmark import measure_spec

    def compare():
        fast = measure_spec(bench_spec(n, "fastpath"), repeats=2)
        slow = measure_spec(bench_spec(n, "async"), repeats=2)
        return fast["steps_per_sec"] / slow["steps_per_sec"]

    ratio = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["fastpath_vs_async"] = ratio
    floor = 2.0 if n >= 64 else 1.5
    assert ratio >= floor, f"fastpath only {ratio:.2f}x async at n={n}"
