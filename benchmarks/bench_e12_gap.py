"""E12 — Section 6: the exponential directed/undirected label gap.

Paper claim: directed anonymous networks force Ω(|V| log d_out)-bit labels
where undirected anonymous networks manage O(log |V|).  Expected shape: on
the same pruned-tree topologies, directed label bits grow ~linearly in |V|
while the undirected DFS baseline grows ~logarithmically — a gap factor
that increases with |V|.
"""

from repro.analysis.scaling import loglog_slope

from conftest import run_experiment


def test_bench_e12_gap(benchmark, engine):
    rows = run_experiment(benchmark, "e12", engine=engine)
    gaps = [row["gap_factor"] for row in rows]
    assert gaps == sorted(gaps), "gap must widen with |V|"
    directed_slope = loglog_slope(
        [row["V"] for row in rows], [row["directed_label_bits"] for row in rows]
    )
    undirected_slope = loglog_slope(
        [row["V"] for row in rows], [row["undirected_label_bits"] for row in rows]
    )
    assert directed_slope > 0.6
    assert undirected_slope < 0.5
