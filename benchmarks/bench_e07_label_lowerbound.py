"""E7 — Theorem 5.2 / Figure 6: the Ω(|V| log d_out) label lower bound.

Paper claim: pruning a full (d, h) tree to one root-to-leaf path (off-path
edges re-aimed at t, ports preserved) leaves the deep leaf's label
*identical*, so an Ω(h·log d)-bit label lives on an (h+3)-vertex graph.
Expected shape: full-vs-pruned label equality; leaf label bits growing
linearly in h and in log d.
"""

from repro.analysis.scaling import loglog_slope

from conftest import run_experiment


def test_bench_e07_label_lowerbound(benchmark):
    rows = run_experiment(benchmark, "e07")
    checked = [row for row in rows if row["pruning_identical"] != ""]
    assert checked and all(row["pruning_identical"] for row in checked)
    # Linear growth in h for fixed d=2.
    d2 = [row for row in rows if row["degree"] == 2]
    slope = loglog_slope([row["height"] for row in d2], [row["leaf_label_bits"] for row in d2])
    assert 0.5 <= slope <= 1.2, slope
