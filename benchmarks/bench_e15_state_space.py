"""E15 — §2 quality measure: per-vertex memory (state-space size).

Paper context: "The size of the state space is related to the amount of
memory needed at each vertex of the network."  Expected shape: scalar
commodity protocols keep tiny states; the interval protocols pay a growing
memory premium for identifiable commodity, larger still for labeling (the
retained label plus the d+1 partition).
"""


from conftest import run_experiment


def test_bench_e15_state_space(benchmark, engine):
    rows = run_experiment(benchmark, "e15", engine=engine)
    for row in rows:
        assert row["general_state_bits"] > row["dag_state_bits"]
        assert row["labeling_state_bits"] >= row["general_state_bits"]
    # The interval/scalar ratio grows with size — the memory cost of cycles.
    ratios = [row["general/dag_ratio"] for row in rows]
    assert ratios[-1] > ratios[0]
