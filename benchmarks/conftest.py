"""Shared helper for the experiment benches.

Each bench runs one experiment driver exactly once under pytest-benchmark
(the drivers are deterministic; re-running them only repeats identical
work), prints the full result table so the bench log reproduces every
number recorded in EXPERIMENTS.md, and returns the rows for shape
assertions.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.analysis.report import render_table


def run_experiment(benchmark, name: str, driver: Callable[[], List[Dict]]) -> List[Dict]:
    """Run ``driver`` once under the benchmark fixture and print its table."""
    rows = benchmark.pedantic(driver, rounds=1, iterations=1)
    table = render_table(rows, title=f"== {name} ==")
    print(file=sys.stderr)
    print(table, file=sys.stderr)
    benchmark.extra_info["rows"] = len(rows)
    return rows
