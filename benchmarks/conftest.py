"""Shared helpers for the experiment benches.

Each bench runs one experiment driver exactly once under pytest-benchmark
(the drivers are deterministic; re-running them only repeats identical
work), prints the full result table so the bench log reproduces every
number recorded in EXPERIMENTS.md, and returns the rows for shape
assertions.

Experiment benches whose drivers execute :class:`~repro.api.spec.RunSpec`
workloads are parametrized over the execution engines in
:data:`ENGINES_UNDER_TEST` (request the ``engine`` fixture argument): the
driver's specs are seeded through
:func:`repro.analysis.experiments.experiments_engine`, so the perf
trajectory in the bench log compares *engines*, not just protocols.  Rows
are engine-independent by the differential-equivalence contract (enforced
in ``tests/api/test_engine_differential.py``); only the timings differ.
Suites whose drivers bypass the spec layer (the lower-bound and
schedule-exploration harnesses, and the synchronous-only E13) do not take
the parameter — an engine label there would mislabel identical work.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.analysis.experiments import experiments_engine
from repro.analysis.report import render_table

#: Engines every spec-routed experiment bench is measured under.  The
#: synchronous engine is excluded here — it changes delivery semantics
#: (rounds), so it has its own dedicated suite in ``bench_engines.py``.
ENGINES_UNDER_TEST = ("async", "fastpath")


def pytest_generate_tests(metafunc):
    if "engine" in metafunc.fixturenames:
        metafunc.parametrize("engine", ENGINES_UNDER_TEST)


def run_experiment(
    benchmark, name: str, driver: Callable[[], List[Dict]], engine: str = "async"
) -> List[Dict]:
    """Run ``driver`` under ``engine`` once inside the benchmark fixture."""

    def call() -> List[Dict]:
        with experiments_engine(engine):
            return driver()

    rows = benchmark.pedantic(call, rounds=1, iterations=1)
    table = render_table(rows, title=f"== {name} [{engine}] ==")
    print(file=sys.stderr)
    print(table, file=sys.stderr)
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["engine"] = engine
    return rows
