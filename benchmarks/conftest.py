"""Shared helpers for the experiment benches.

Each bench runs one *registered experiment campaign* exactly once under
pytest-benchmark (the campaigns are deterministic; re-running them only
repeats identical work), prints the full result table so the bench log
reproduces every number recorded in EXPERIMENTS.md, and returns the rows
for shape assertions.

Benches address experiments by :data:`repro.api.EXPERIMENTS` registry name
(``"e01"`` … ``"e16"``) and execute them through an in-process
:class:`~repro.api.campaign.CampaignRunner` — the exact objects
``repro experiment <name>`` runs, so the bench log measures what ships.

Benches whose campaigns execute :class:`~repro.api.spec.RunSpec` grids are
parametrized over the execution engines in :data:`ENGINES_UNDER_TEST`
(request the ``engine`` fixture argument); the engine is an explicit
campaign override, replacing the deprecated ``experiments_engine()``
mutable-global context manager.  Rows are engine-independent by the
differential-equivalence contract (enforced in
``tests/api/test_engine_differential.py``); only the timings differ.
Suites whose campaigns bypass the spec layer (the lower-bound and
schedule-exploration harnesses, and the engine-locked synchronous E13) do
not take the parameter — an engine label there would mislabel identical
work.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.api import EXPERIMENTS, ensure_registered
from repro.api.campaign import CampaignRunner

#: Engines every spec-routed experiment bench is measured under.  The
#: synchronous engine is excluded here — it changes delivery semantics
#: (rounds), so it has its own dedicated suite in ``bench_engines.py``.
ENGINES_UNDER_TEST = ("async", "fastpath")


def pytest_generate_tests(metafunc):
    if "engine" in metafunc.fixturenames:
        metafunc.parametrize("engine", ENGINES_UNDER_TEST)


def run_experiment(
    benchmark, name: str, engine: Optional[str] = None
) -> List[Dict]:
    """Run the registered campaign ``name`` under ``engine`` once."""
    ensure_registered()
    experiment = EXPERIMENTS.get(name)

    def call():
        return CampaignRunner(engine=engine, parallel=False).run(experiment)

    result = benchmark.pedantic(call, rounds=1, iterations=1)
    title = getattr(experiment, "title", "") or name
    table = render_table(
        result.rows, title=f"== {name} {title.strip()} [{engine or 'default'}] =="
    )
    print(file=sys.stderr)
    print(table, file=sys.stderr)
    benchmark.extra_info["experiment"] = name
    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["engine"] = engine or "default"
    return result.rows
