"""E8 — the "iff" direction of Theorems 3.1/4.2/5.1.

Paper claim: the protocols do *not* terminate when some vertex reachable
from s cannot reach t.  Expected shape: zero false terminations across all
protocols × bad graphs (dead ends and stranded cycles) × schedulers.
"""


from conftest import run_experiment


def test_bench_e08_nontermination(benchmark, engine):
    rows = run_experiment(benchmark, "e08", engine=engine)
    assert rows
    for row in rows:
        assert row["bad_graph_runs"] > 0
        assert row["false_terminations"] == 0
