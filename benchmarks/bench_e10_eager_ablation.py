"""E10 — Section 3.3 ablation: eager per-message vs aggregated commodity.

Paper context (§2): there is an explicit trade-off between message count
and message size.  Expected shape: on layered diamond DAGs the eager
variant's message count grows exponentially with depth (2^depth paths)
while the waiting variant sends exactly |E| messages.
"""

from repro.analysis.scaling import semilog_slope

from conftest import run_experiment


def test_bench_e10_eager_ablation(benchmark, engine):
    rows = run_experiment(benchmark, "e10", engine=engine)
    assert all(row["waiting_is_E"] for row in rows)
    depths = [row["depth"] for row in rows]
    eager = [row["eager_messages"] for row in rows]
    assert semilog_slope(depths, eager) > 0.8  # exponential in depth
