"""E6 — Theorem 5.1: unique label assignment.

Paper claim: on termination every vertex holds a unique label of
O(|V|·log d_out) bits; total communication O(|E|²·|V|·log d_out).
Expected shape: every internal vertex labeled, labels pairwise disjoint
(hence unique), max label bits within a constant of |V|·log₂ d_out.
"""


from conftest import run_experiment


def test_bench_e06_labeling(benchmark, engine):
    rows = run_experiment(benchmark, "e06", engine=engine)
    for row in rows:
        assert row["all_labeled"]
        assert row["labels_disjoint"]
        assert row["max_label_bits"] <= 4 * row["bound_VlogD"] + 32
