"""E13 — §2 synchronous extension: rounds-to-termination.

Paper context: "In a synchronous model one may also consider the time it
takes for the protocol to terminate."  Expected shape: tree/DAG commodity
protocols terminate in exactly longest-path rounds (the wait chain); the
general interval protocol stays well under a small multiple of |V| on
random cyclic digraphs.
"""


from conftest import run_experiment


def test_bench_e13_round_complexity(benchmark):
    rows = run_experiment(benchmark, "e13")
    for row in rows:
        assert row["tree_rounds"] == row["tree_longest_path"]
        assert row["dag_rounds"] == row["dag_longest_path"]
        assert row["general_rounds"] <= row["general_V"]
