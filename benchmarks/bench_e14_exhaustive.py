"""E14 — beyond the paper: exhaustive ∀-schedule, ∀-topology verification.

Model-checks the termination "iff" over every delivery schedule on every
small topology (all grounded trees with 3 internal vertices; all
2-internal-vertex wirings with ≤ 5 edges, cycles and self-loops included).
Expected shape: zero violations with zero truncation — on these instances
the theorem is machine-checked, not sampled.
"""


from conftest import run_experiment


def test_bench_e14_exhaustive(benchmark):
    rows = run_experiment(benchmark, "e14")
    for row in rows:
        assert row["iff_violations"] == 0
        assert row["topologies"] > 0
