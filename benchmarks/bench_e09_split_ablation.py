"""E9 — Section 3.1 ablation: naive x/d split vs the power-of-two rule.

Paper claim: the naive rule costs O(|E|^{3/2}) total vs O(|E| log |E|) with
power-of-two values.  Expected shape: naive total bits exceed pow2 and the
gap widens with |E|; naive max message bits grow polynomially while pow2
stays logarithmic.
"""


from conftest import run_experiment


def test_bench_e09_split_ablation(benchmark, engine):
    rows = run_experiment(benchmark, "e09", engine=engine)
    ratios = [row["bits_ratio"] for row in rows]
    assert all(r > 1.5 for r in ratios)
    assert ratios[-1] >= ratios[0]
    import math

    for row in rows:
        assert row["pow2_max_msg"] <= 8 * math.log2(row["E"])
        assert row["naive_max_msg"] > row["pow2_max_msg"]
