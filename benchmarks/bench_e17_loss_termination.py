"""E17 — faults: broadcast termination rate vs. message-loss rate.

Expected shape: the fault-free row terminates every seed; as the loss
rate rises the termination rate decays toward zero, and every
non-terminating run ends quiescent (fail-safe — the `quiescent` column
absorbs exactly the non-terminating remainder).
"""


from conftest import run_experiment


def test_bench_e17_loss_termination(benchmark, engine):
    rows = run_experiment(benchmark, "e17", engine=engine)
    assert [type(row["drop_probability"]) for row in rows] == [float] * len(rows)
    baseline = rows[0]
    assert baseline["drop_probability"] == 0.0
    assert baseline["termination_rate"] == 1.0
    for row in rows:
        assert row["runs"] == row["terminated"] + row["quiescent"]
    assert rows[-1]["termination_rate"] <= baseline["termination_rate"]
