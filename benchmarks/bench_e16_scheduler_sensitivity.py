"""E16 — ablation: the asynchronous adversary's effect on cost.

Same graph, same protocol, all schedulers.  Expected shape: termination and
delivery identical everywhere (the ∀-schedule theorems); message/bit totals
vary within a modest band (depth-first and terminal-starving orders inflate
cycle churn and message widths); no adversary breaks the upper bounds.
"""


from conftest import run_experiment


def test_bench_e16_scheduler_sensitivity(benchmark, engine):
    rows = run_experiment(benchmark, "e16", engine=engine)
    assert all(row["terminated"] for row in rows)
    spreads = [row["vs_best"] for row in rows]
    assert max(spreads) < 3.0, "cost spread across adversaries stays bounded"
