"""Micro-benchmarks for the hot paths under every experiment.

Unlike the E-benches (one measured run of a whole experiment), these use
pytest-benchmark's repeated timing to track the throughput of the exact
arithmetic and the simulator — the costs that bound how large the paper's
graph families can be pushed.
"""

from repro.api import BatchRunner, RunSpec
from repro.core.dyadic import Dyadic
from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.intervals import Interval, IntervalUnion, canonical_partition
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import random_digraph, random_grounded_tree
from repro.network.simulator import run_protocol


def _fragmented_union(pieces: int) -> IntervalUnion:
    intervals = []
    for i in range(pieces):
        lo = Dyadic(4 * i, 10)
        hi = Dyadic(4 * i + 2, 10)
        intervals.append(Interval(lo, hi))
    return IntervalUnion(intervals)


def test_micro_union_algebra(benchmark):
    a = _fragmented_union(64)
    b = _fragmented_union(64)
    shifted = IntervalUnion(
        [Interval(iv.lo + Dyadic(1, 10), iv.hi + Dyadic(1, 10)) for iv in b]
    )

    def ops():
        a.union(shifted)
        a.intersection(shifted)
        a.difference(shifted)

    benchmark(ops)


def test_micro_canonical_partition(benchmark):
    alpha = _fragmented_union(32)
    benchmark(lambda: canonical_partition(alpha, 8))


def test_micro_tree_broadcast_500(benchmark):
    net = random_grounded_tree(500, seed=0)

    def run():
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.terminated

    benchmark(run)


def test_micro_general_broadcast_30(benchmark):
    net = random_digraph(30, seed=0)

    def run():
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert result.terminated

    benchmark(run)


def test_micro_labeling_30(benchmark):
    net = random_digraph(30, seed=0)

    def run():
        result = run_protocol(net, LabelAssignmentProtocol())
        assert result.terminated

    benchmark(run)


# ----------------------------------------------------------------------
# BatchRunner throughput — the perf guard for the run-spec layer.
#
# Later scaling PRs (sharding, caching, multi-backend) all express
# themselves as "a thing that consumes RunSpecs", so specs/sec through the
# BatchRunner is the baseline they must not regress.  The serial bench
# isolates the spec layer's own overhead (registry resolution, graph
# rebuild, record construction); the pool bench adds process dispatch.
# ----------------------------------------------------------------------

_BATCH_SPECS = [
    RunSpec(
        graph="random-grounded-tree",
        graph_params={"num_internal": 60},
        protocol="tree-broadcast",
        seed=seed,
    )
    for seed in range(16)
]


def _assert_batch(benchmark, records):
    assert len(records) == len(_BATCH_SPECS)
    assert all(record.terminated for record in records)
    if benchmark.stats:  # absent under --benchmark-disable
        benchmark.extra_info["specs_per_sec"] = round(
            len(_BATCH_SPECS) / benchmark.stats["mean"], 1
        )


def test_micro_batchrunner_serial_16(benchmark):
    runner = BatchRunner(parallel=False)
    records = benchmark(lambda: runner.run(_BATCH_SPECS))
    _assert_batch(benchmark, records)


def test_micro_batchrunner_pool_16(benchmark):
    runner = BatchRunner(max_workers=2, chunksize=4)
    records = benchmark.pedantic(
        lambda: runner.run(_BATCH_SPECS), rounds=3, iterations=1
    )
    _assert_batch(benchmark, records)
