"""Micro-benchmarks for the hot paths under every experiment.

Unlike the E-benches (one measured run of a whole experiment), these use
pytest-benchmark's repeated timing to track the throughput of the exact
arithmetic and the simulator — the costs that bound how large the paper's
graph families can be pushed.
"""

from repro.core.dyadic import Dyadic
from repro.core.general_broadcast import GeneralBroadcastProtocol
from repro.core.intervals import Interval, IntervalUnion, canonical_partition
from repro.core.labeling import LabelAssignmentProtocol
from repro.core.tree_broadcast import TreeBroadcastProtocol
from repro.graphs.generators import random_digraph, random_grounded_tree
from repro.network.simulator import run_protocol


def _fragmented_union(pieces: int) -> IntervalUnion:
    intervals = []
    for i in range(pieces):
        lo = Dyadic(4 * i, 10)
        hi = Dyadic(4 * i + 2, 10)
        intervals.append(Interval(lo, hi))
    return IntervalUnion(intervals)


def test_micro_union_algebra(benchmark):
    a = _fragmented_union(64)
    b = _fragmented_union(64)
    shifted = IntervalUnion(
        [Interval(iv.lo + Dyadic(1, 10), iv.hi + Dyadic(1, 10)) for iv in b]
    )

    def ops():
        a.union(shifted)
        a.intersection(shifted)
        a.difference(shifted)

    benchmark(ops)


def test_micro_canonical_partition(benchmark):
    alpha = _fragmented_union(32)
    benchmark(lambda: canonical_partition(alpha, 8))


def test_micro_tree_broadcast_500(benchmark):
    net = random_grounded_tree(500, seed=0)

    def run():
        result = run_protocol(net, TreeBroadcastProtocol())
        assert result.terminated

    benchmark(run)


def test_micro_general_broadcast_30(benchmark):
    net = random_digraph(30, seed=0)

    def run():
        result = run_protocol(net, GeneralBroadcastProtocol())
        assert result.terminated

    benchmark(run)


def test_micro_labeling_30(benchmark):
    net = random_digraph(30, seed=0)

    def run():
        result = run_protocol(net, LabelAssignmentProtocol())
        assert result.terminated

    benchmark(run)
