#!/usr/bin/env python3
"""Firmware rollout over a unidirectional wireless sensor field.

The paper motivates directed anonymous networks with wireless ad-hoc
deployments: cheap sensors with no configured identities and *asymmetric*
radio links (a high-power node is heard by nodes it cannot hear), so the
communication graph is directed and not strongly connected.

Scenario: a gateway ``s`` injects a firmware image into the field; a sink
``t`` must raise "rollout complete" **only** when every sensor holds the
image.  Plain flooding delivers the image but can never confirm (the
paper's motivating gap); the Section 4 commodity protocol both delivers and
confirms — and refuses to confirm when part of the field is cut off.

Run:  python examples/adhoc_sensor_field.py
"""

from repro import GeneralBroadcastProtocol, run_protocol
from repro.baselines import FloodingProtocol
from repro.graphs import geometric_sensor_field, with_dead_end_vertex
from repro.network import RandomScheduler

FIRMWARE = "sensorfw-3.1.4-binary-image"


def rollout(net, title: str) -> None:
    print(f"--- {title} ---")
    print(f"field: {net.num_vertices - 2} sensors, {net.num_edges} directed radio links")

    # Baseline: flooding delivers but cannot confirm.
    flood = run_protocol(net, FloodingProtocol(FIRMWARE), RandomScheduler(seed=1))
    informed = sum(
        1 for v, s in flood.states.items() if v != net.root and s.got_broadcast
    )
    print(
        f"flooding : delivered to {informed}/{net.num_vertices - 1} nodes, "
        f"outcome={flood.outcome.value!r} (no sound completion signal exists)"
    )

    # The paper's protocol: delivery + confirmed termination at the sink.
    result = run_protocol(net, GeneralBroadcastProtocol(FIRMWARE), RandomScheduler(seed=1))
    if result.terminated:
        informed = sum(
            1 for v, s in result.states.items() if v != net.root and s.got_broadcast
        )
        m = result.metrics
        print(
            f"commodity: sink confirmed rollout — {informed}/{net.num_vertices - 1} nodes "
            f"hold the image ({m.total_messages} messages, "
            f"{m.total_bits:,} bits, largest message {m.max_message_bits} bits)"
        )
    else:
        print(
            f"commodity: sink did NOT confirm (outcome={result.outcome.value!r}) — "
            "some sensor cannot report back; rollout not certified"
        )
    print()


def main() -> None:
    field = geometric_sensor_field(25, seed=3, base_range=0.3, range_spread=0.2)
    rollout(field, "healthy field")

    # A sensor whose uplink radio died: it still hears the network (the
    # image reaches it) but nothing it holds can ever reach the sink.
    broken = with_dead_end_vertex(field)
    rollout(broken, "field with a mute sensor (receive-only)")

    print(
        "The sink certifies completion exactly when every sensor can reach it —\n"
        "the paper's 'terminates iff all vertices are connected to t'."
    )


if __name__ == "__main__":
    main()
