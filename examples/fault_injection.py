#!/usr/bin/env python3
"""Fault injection: what the paper's protocols do when the model breaks.

The README's "Fault scenarios" snippet, expanded into a runnable tour:

1. attach a declarative :class:`repro.FaultSpec` to a run spec — message
   loss plus a churn interval — and execute it on the fastpath engine,
2. check the fail-safe contract (loss stalls termination, never fakes it)
   and read the fault counters out of the record,
3. verify determinism-by-seed and async/fastpath engine equivalence,
4. run a crash schedule and an adversarial scheduler strategy,
5. sweep the loss rate the way campaign ``e17`` does.

Run:  python examples/fault_injection.py
"""

from repro.api import RunSpec, execute_spec, execute_spec_full
from repro.core.invariants import labels_disjoint_globally


def base_spec(**overrides) -> RunSpec:
    fields = dict(
        graph="random-digraph",
        graph_params={"num_internal": 12},
        protocol="general-broadcast",
        engine="fastpath",
        seed=2,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def main() -> None:
    # --- 1 + 2: loss + churn, fail-safe outcome, fault counters --------
    spec = base_spec(
        faults={
            "drop_probability": 0.1,
            "churn": [{"vertex": 3, "leave_step": 10, "rejoin_step": 60}],
        }
    )
    record = execute_spec(spec)
    assert record.outcome in ("terminated", "quiescent-without-termination")
    counters = {k: v for k, v in record.metrics.items() if k.startswith("fault_")}
    print(f"outcome under loss+churn: {record.outcome}")
    print(f"fault counters: {counters}")

    # --- 3: deterministic given (spec, seed), identical across engines -
    assert execute_spec(spec).comparable_dict() == record.comparable_dict()
    async_record = execute_spec(RunSpec.from_dict({**spec.to_dict(), "engine": "async"}))
    fast, slow = record.comparable_dict(), async_record.comparable_dict()
    fast["spec"].pop("engine"), slow["spec"].pop("engine")
    assert fast == slow, "faulty runs are engine-identical"
    print("determinism + engine equivalence hold")

    # --- 4a: crash the terminal — termination becomes impossible -------
    crashed = execute_spec(base_spec(faults={"crashes": [{"vertex": 1, "step": 0}]}))
    assert not crashed.terminated
    print(f"terminal crashed at step 0: {crashed.outcome}")

    # --- 4b: adversarial strategy from the FAULTS registry -------------
    starved = execute_spec(base_spec(faults={"adversary": "starve-one-edge"}))
    assert starved.terminated, "starvation is just a harsher schedule"
    print(f"starve-one-edge still terminates: messages={starved.metrics['total_messages']}")

    # --- 4c: churn under labeling — safety survives the reset ----------
    rec, result, _net = execute_spec_full(
        base_spec(
            protocol="label-assignment",
            faults={"churn": [{"vertex": 4, "leave_step": 15, "rejoin_step": 70}]},
        )
    )
    assert labels_disjoint_globally(result.states)
    print(f"labels stay disjoint under churn (rejoins={rec.metrics['fault_rejoined']})")

    # --- 5: the e17 question in four lines -----------------------------
    print("\nloss rate -> termination over 4 seeds:")
    for rate in (0.0, 0.05, 0.2, 0.5):
        records = [
            execute_spec(base_spec(seed=s, faults={"drop_probability": rate}))
            for s in range(4)
        ]
        done = sum(r.terminated for r in records)
        print(f"  drop={rate:4.2f}  terminated {done}/4")
    print("\n(the registered campaign does this at scale: repro experiment e17)")


if __name__ == "__main__":
    main()
