#!/usr/bin/env python3
"""Mapping an anonymous peer-to-peer overlay from the edge.

The paper's second motivating domain is peer-to-peer networks: overlay
links are frequently one-way (NAT traversal, asymmetric firewalls), peers
run identical software and have no trusted identities, and nobody knows the
overlay's size.  The paper's Section 5 + Section 6 programme: assign unique
labels, then flood local adjacency facts until the terminal can reconstruct
the *entire* topology — turning an anonymous network into a mapped one.

This example runs the :class:`~repro.core.mapping.MappingProtocol` on a
random cyclic overlay, prints the reconstructed adjacency, and verifies it
is exactly the ground truth (which only the simulator knows).

Run:  python examples/p2p_overlay_mapping.py
"""

from repro import MappingProtocol, random_digraph, run_protocol
from repro.core.intervals import union_cost
from repro.core.mapping import ROOT_MARKER, TERMINAL_MARKER
from repro.network import RandomScheduler


def short(identity) -> str:
    """Compact display name for a vertex identity."""
    if isinstance(identity, str):
        return identity
    return str(identity)


def main() -> None:
    overlay = random_digraph(num_internal=12, seed=21)
    print(f"ground truth (hidden from the protocol): {overlay}")
    print(f"cyclic: {not overlay.is_acyclic()}\n")

    result = run_protocol(overlay, MappingProtocol(), RandomScheduler(seed=4))
    assert result.terminated, "overlay is fully connected to t, so mapping must finish"
    netmap = result.output

    print("terminal's reconstructed map (vertex ← out-degree):")
    for identity in sorted(netmap.vertices, key=short):
        print(f"  {short(identity):40s} out-degree {netmap.vertices[identity]}")

    print("\nreconstructed wiring (tail:port → head):")
    for fact in sorted(netmap.edges, key=lambda f: (short(f.tail), f.tail_port)):
        print(f"  {short(fact.tail):40s} port {fact.tail_port} → {short(fact.head)}")

    # Verify against ground truth under the label correspondence.
    identity = {overlay.root: ROOT_MARKER, overlay.terminal: TERMINAL_MARKER}
    for v in overlay.internal_vertices():
        identity[v] = result.states[v].base.label
    assert netmap.matches_network(overlay, identity)
    print("\nmap verified: exact match with the hidden ground truth ✔")

    label_bits = max(
        union_cost(result.states[v].base.label) for v in overlay.internal_vertices()
    )
    m = result.metrics
    print(
        f"\ncost: {m.total_messages} messages, {m.total_bits:,} bits total; "
        f"largest label {label_bits} bits "
        f"(Theorem 5.1 predicts Θ(|V|·log d_out) — the price of directedness)"
    )


if __name__ == "__main__":
    main()
