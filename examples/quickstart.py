#!/usr/bin/env python3
"""Quickstart: broadcast with confirmed delivery on a directed anonymous network.

This is the 60-second tour of the library:

1. build a directed network with a root ``s`` and terminal ``t``,
2. run the Section 4 interval broadcast — it terminates *iff* every vertex
   can reach ``t``, and on termination every vertex provably holds ``m``,
3. run the Section 5 protocol to give the anonymous vertices unique labels,
4. inspect the communication metrics the paper's theorems bound,
5. express the same run as a serializable :class:`repro.RunSpec`, then
   sweep a tree broadcast across seeds through the vectorized ``batch``
   engine with :class:`repro.BatchRunner` — the declarative API behind
   ``repro run --spec`` and ``repro batch``.

Run:  python examples/quickstart.py
"""

from repro import (
    BatchRunner,
    GeneralBroadcastProtocol,
    LabelAssignmentProtocol,
    RunSpec,
    extract_labels,
    labels_pairwise_disjoint,
    random_digraph,
    run_protocol,
)
from repro.core.complexity import general_broadcast_total_bits_bound
from repro.graphs import classify, with_dead_end_vertex


def main() -> None:
    # A 30-internal-vertex digraph with directed cycles — the paper's
    # general regime (not strongly connected, no vertex identities).
    net = random_digraph(num_internal=30, seed=7)
    print(f"network: {net}  class={classify(net)}")

    # --- Broadcast with confirmed delivery (Theorem 4.2) ---------------
    result = run_protocol(net, GeneralBroadcastProtocol("firmware-v2"))
    assert result.terminated, "all vertices reach t, so the protocol must terminate"
    delivered = sum(
        1 for v, s in result.states.items() if v != net.root and s.got_broadcast
    )
    print(f"broadcast: terminated, delivered to {delivered}/{net.num_vertices - 1} vertices")
    m = result.metrics
    bound = general_broadcast_total_bits_bound(net)
    print(
        f"  messages={m.total_messages}  total_bits={m.total_bits}"
        f"  max_message_bits={m.max_message_bits}"
    )
    print(f"  paper bound |E|^2·|V|·log(d_out) = {bound:,.0f}  (ratio {m.total_bits / bound:.3f})")

    # --- Unique label assignment (Theorem 5.1) -------------------------
    result = run_protocol(net, LabelAssignmentProtocol())
    labels = extract_labels(result.states)
    assert set(labels) == set(net.internal_vertices())
    assert labels_pairwise_disjoint(list(labels.values()))
    print(f"labeling: all {len(labels)} internal vertices got disjoint sub-intervals of [0,1)")
    example_vertex, example_label = next(iter(sorted(labels.items())))
    print(f"  e.g. vertex {example_vertex} ← {example_label}")

    # --- The 'iff': a vertex that cannot reach t blocks termination ----
    broken = with_dead_end_vertex(net)
    result = run_protocol(broken, GeneralBroadcastProtocol("firmware-v2"))
    assert not result.terminated
    print("iff-direction: with a dead-end region grafted on, the protocol "
          f"correctly ends {result.outcome.value!r}")

    # --- The same run, as data (the repro.api run-spec layer) ----------
    # Components are addressed by registry name ('repro registry' lists
    # them: protocols like "general-broadcast", graphs like
    # "random-digraph", schedulers like "fifo"), so a run fits in a JSON
    # file and round-trips exactly.
    spec = RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 30},
        protocol="general-broadcast",
        protocol_params={"broadcast_payload": "firmware-v2"},
        seed=7,
    )
    assert RunSpec.from_dict(spec.to_dict()) == spec  # JSON round-trip
    record = spec.run()
    assert record.terminated
    assert record.metrics["total_bits"] == m.total_bits  # same run, same numbers
    print(f"run-spec: {spec.protocol} on {spec.graph} reproduced "
          f"{record.metrics['total_bits']} bits from a serializable spec "
          f"(id {spec.spec_id})")

    # A seed sweep is just many specs; BatchRunner executes them in
    # parallel and, given output_path=..., persists JSONL it can resume.
    # The batch engine vectorizes the whole sweep: every flat-kernel
    # protocol (here the Section 4.1 tree broadcast) runs K seeds as one
    # numpy state tensor, record-identical to per-seed execution.  The
    # *graph* seed is pinned in graph_params so all runs share one
    # topology — that's what lets the group reach the kernel as a unit.
    sweep = RunSpec(
        graph="random-grounded-tree",
        graph_params={"num_internal": 30, "seed": 7},
        protocol="tree-broadcast",
        scheduler="random",
        engine="batch",
    )
    runner = BatchRunner()
    records = runner.run([sweep.with_seed(s) for s in range(16)])
    assert runner.stats.batched_groups == 1  # one vectorized run_many call
    worst = max(r.metrics["total_bits"] for r in records)
    print(f"batch: 16 seeds in one vectorized group, worst-case total_bits={worst}")


if __name__ == "__main__":
    main()
