#!/usr/bin/env python3
"""Round-by-round: time complexity and the anatomy of a labeling run.

The paper's Section 2 notes that in a synchronous model one may also ask
how much *time* a protocol takes.  This example runs the protocols in
lockstep rounds (every in-flight message delivered per round) and shows:

1. broadcast time on trees and DAGs equals the longest root→terminal path
   (the chain of waits), measured against the graph's true longest path;
2. the label map a labeling run produces, drawn as ASCII slices of
   ``[0, 1)`` — Theorem 5.1's disjointness, visible;
3. how the heterogeneous-latency scheduler changes delivery order but not
   any correctness property.

Run:  python examples/synchronous_rounds.py
"""

from repro import LabelAssignmentProtocol, TreeBroadcastProtocol, extract_labels, run_protocol
from repro.analysis.visualize import render_label_map
from repro.core.dag_broadcast import DagBroadcastProtocol
from repro.graphs import random_dag, random_digraph, random_grounded_tree
from repro.graphs.properties import longest_path_length
from repro.network import LatencyScheduler, run_protocol_synchronous


def time_complexity() -> None:
    print("--- synchronous time = longest wait chain ---")
    for name, net, protocol in (
        ("grounded tree", random_grounded_tree(60, seed=2), TreeBroadcastProtocol()),
        ("random DAG   ", random_dag(60, seed=2), DagBroadcastProtocol()),
    ):
        result = run_protocol_synchronous(net, protocol)
        assert result.terminated
        depth = longest_path_length(net)
        print(
            f"{name}: |V|={net.num_vertices:3d}  longest s→…→t path = {depth:2d}  "
            f"terminated after {result.termination_round:2d} rounds"
        )
    print()


def label_anatomy() -> None:
    print("--- the label map of a cyclic digraph (Theorem 5.1) ---")
    net = random_digraph(10, seed=11)
    result = run_protocol_synchronous(net, LabelAssignmentProtocol())
    assert result.terminated
    labels = extract_labels(result.states)
    print(f"{len(labels)} anonymous vertices each retained a disjoint slice of [0, 1):\n")
    print(render_label_map(labels, width=56))
    print(f"\n(labeling finished after {result.termination_round} synchronous rounds)")
    print()


def heterogeneous_links() -> None:
    print("--- heterogeneous link latencies (asynchronous adversary) ---")
    net = random_digraph(15, seed=3)
    for seed in (0, 1, 2):
        scheduler = LatencyScheduler(seed=seed, min_latency=1.0, max_latency=50.0)
        result = run_protocol(net, LabelAssignmentProtocol(), scheduler)
        assert result.terminated
        labels = extract_labels(result.states)
        print(
            f"latency seed {seed}: terminated at virtual time "
            f"{scheduler.virtual_time:8.1f}, {len(labels)} labels, "
            f"{result.metrics.total_messages} messages"
        )
    print("\nDelivery order varies wildly with link speeds; every correctness")
    print("property holds regardless — the ∀-schedule guarantees of the paper.")


def main() -> None:
    time_complexity()
    label_anatomy()
    heterogeneous_links()


if __name__ == "__main__":
    main()
