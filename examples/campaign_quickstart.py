#!/usr/bin/env python3
"""Campaign quickstart: a whole experiment as one serializable object.

The spec quickstart (``examples/quickstart.py``) ends with a single run
expressed as data; this one lifts the *experiment* to the same level:

1. build an :class:`repro.ExperimentSpec` — a base ``RunSpec`` template,
   ordered grid axes, and a named aggregator,
2. check the JSON round-trip and the deterministic grid expansion,
3. execute it with a :class:`repro.CampaignRunner` (spec_id-keyed resume,
   per-experiment artifacts) and read the aggregated rows,
4. run a *registered* paper experiment (``e05``) the same way — the exact
   object behind ``repro experiment e05``.

Run:  python examples/campaign_quickstart.py
"""

import tempfile

from repro import CampaignRunner, ExperimentSpec
from repro.api import EXPERIMENTS, ensure_registered


def main() -> None:
    # --- 1. an experiment as data --------------------------------------
    # Axes are dotted paths into the RunSpec template; the grid is their
    # cartesian product, first axis outermost — deterministic, always.
    campaign = ExperimentSpec(
        name="demo-campaign",
        title="worst-case broadcast bits across seeds and sizes",
        base={"graph": "random-digraph", "protocol": "general-broadcast",
              "engine": "fastpath"},
        axes={"graph_params.num_internal": [10, 20, 40], "seed": [0, 1, 2, 3]},
        aggregator="min-mean-max",
        aggregator_params={"metric": "total_bits"},
        scales={"quick": {"graph_params.num_internal": [10], "seed": [0, 1]}},
    )

    # --- 2. round-trip + expansion -------------------------------------
    assert ExperimentSpec.from_dict(campaign.to_dict()) == campaign
    specs = campaign.expand()
    assert len(specs) == 3 * 4
    assert [s.spec_id for s in specs] == [s.spec_id for s in campaign.expand()]
    print(f"campaign {campaign.name!r} expands to {len(specs)} runs "
          f"(id {campaign.experiment_id})")

    # --- 3. execute with resume ----------------------------------------
    with tempfile.TemporaryDirectory() as out_dir:
        result = CampaignRunner(out_dir=out_dir, parallel=False).run(campaign)
        print(f"executed {result.stats.executed}, rows:")
        for row in result.rows:
            print(f"  n={row['n_internal']:<3} total_bits "
                  f"min={row['total_bits_min']} mean={row['total_bits_mean']:.0f} "
                  f"max={row['total_bits_max']}")

        # Re-running the identical campaign reuses every completed spec_id:
        rerun = CampaignRunner(out_dir=out_dir, parallel=False).run(campaign)
        assert rerun.stats.executed == 0 and rerun.stats.reused == len(specs)
        print(f"resume: {rerun.stats.reused} runs reused, 0 re-executed")

    # --- 4. a registered paper experiment ------------------------------
    # All eighteen E-experiments live in the EXPERIMENTS registry; 'quick'
    # is the CI smoke scale.  This is exactly `repro experiment e05 --quick`.
    ensure_registered()
    e05 = EXPERIMENTS.get("e05")
    result = CampaignRunner(scale="quick", engine="fastpath", parallel=False).run(e05)
    for row in result.rows:
        assert row["ratio"] < 1.0  # Thm 4.2's bound holds
    print(f"registered {e05.name!r} ({e05.title.strip()}): "
          f"{len(result.rows)} rows, all inside the paper bound")


if __name__ == "__main__":
    main()
