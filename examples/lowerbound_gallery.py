#!/usr/bin/env python3
"""Gallery: the paper's three lower-bound constructions, run live.

Walks Figures 4, 5 and 6 — the witness graphs behind Theorems 3.2, 3.8 and
5.2 — runs the matching protocols on them, and prints the measurements that
realise each bound.  Finishes with the canonical-partition erratum this
reproduction found (DESIGN.md §4).

Run:  python examples/lowerbound_gallery.py
"""

from repro import (
    DagBroadcastProtocol,
    GeneralBroadcastProtocol,
    TreeBroadcastProtocol,
    run_protocol,
)
from repro.analysis.report import render_table
from repro.lowerbounds import (
    alphabet_on_gn,
    bandwidth_growth,
    collect_subset_sums,
    hair_quantities,
    label_growth_on_pruned,
    pruning_preserves_label,
    verify_inequality_chain,
)
from repro.network.graph import DirectedNetwork


def figure_5() -> None:
    print("FIGURE 5 — the caterpillar G_n (Theorem 3.2)")
    print("Every correct grounded-tree broadcast needs Ω(n) distinct symbols on G_n;")
    print("the Huffman floor turns that into Ω(|E| log |E|) total bits.\n")
    rows = [
        {
            "n": row.n,
            "|E|": row.num_edges,
            "distinct symbols": row.distinct_symbols,
            "huffman floor (bits)": row.floor_bits,
            "protocol bits": row.measured_bits,
        }
        for row in alphabet_on_gn(TreeBroadcastProtocol, [8, 32, 128])
    ]
    print(render_table(rows))
    print()


def figure_4() -> None:
    print("FIGURE 4 — the skeleton tree (Theorem 3.8)")
    print("Subset sums at the collector w are pairwise distinct — 2^n symbols on an")
    print("O(n)-edge graph force Ω(|E|)-bit bandwidth out of commodity preservation.\n")
    n = 5
    quantities = hair_quantities(n, DagBroadcastProtocol)
    print(f"hair quantities q(u_i), n={n}: "
          + ", ".join(f"u{i}={q}" for i, q in sorted(quantities.items())[:4]) + ", …")
    print(f"decay chain (1) holds: {verify_inequality_chain(quantities, n)}")
    sums = collect_subset_sums(n, DagBroadcastProtocol)
    print(f"subset wirings tried: {len(sums)}; distinct w→t sums: {len(set(sums.values()))}")
    rows = [
        {"n": row.n, "|E|": row.num_edges, "max message bits": row.max_message_bits}
        for row in bandwidth_growth([4, 8, 16], DagBroadcastProtocol)
    ]
    print(render_table(rows))
    print()


def figure_6() -> None:
    print("FIGURE 6 — full tree vs pruned path (Theorem 5.2)")
    print("Pruning preserves the deep leaf's label exactly, so an Ω(h log d)-bit label")
    print("lives on an (h+3)-vertex graph: labels need Ω(|V| log d_out) bits.\n")
    for degree, height in ((2, 5), (3, 4)):
        same = pruning_preserves_label(degree, height)
        print(f"  d={degree}, h={height}: full-tree label == pruned-path label? {same}")
    rows = [
        {
            "d": row.degree,
            "h": row.height,
            "|V| pruned": row.num_vertices_pruned,
            "leaf label bits": row.leaf_label_bits,
        }
        for row in label_growth_on_pruned([(2, 8), (2, 16), (2, 32), (4, 16)])
    ]
    print(render_table(rows))
    print()


def erratum() -> None:
    print("BONUS — the canonical-partition erratum (DESIGN.md §4)")
    print("Literally as printed, the Section 4 partition starves last-port subtrees:\n")
    net = DirectedNetwork(5, [(0, 2), (2, 3), (2, 4), (3, 1), (4, 1)], root=0, terminal=1)
    literal = run_protocol(net, GeneralBroadcastProtocol("m", partition_rule="literal"))
    repaired = run_protocol(net, GeneralBroadcastProtocol("m", partition_rule="repaired"))
    print(f"  literal rule : outcome={literal.outcome.value!r}, "
          f"vertex u received m? {literal.states[4].got_broadcast}   ← broken")
    print(f"  repaired rule: outcome={repaired.outcome.value!r}, "
          f"vertex u received m? {repaired.states[4].got_broadcast}  ← fixed")


def main() -> None:
    figure_5()
    figure_4()
    figure_6()
    erratum()


if __name__ == "__main__":
    main()
